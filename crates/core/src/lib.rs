//! # bh-core — the paper's contribution: BGP blackholing inference
//!
//! Implements the full methodology of Giotsas et al. (IMC 2017), §4:
//!
//! 1. **Dictionary-driven detection** ([`session`]): announcements carrying
//!    a community from the documented blackhole dictionary are candidate
//!    blackholings; shared/ambiguous communities are resolved via the AS
//!    path; IXP blackholing is detected via the route-server ASN on the
//!    path or a peer-ip inside a PeeringDB peering LAN; the blackholing
//!    *user* is the AS-hop before the provider (prepending removed), the
//!    peer-as for route-server views, or the origin for bundled
//!    detections.
//! 2. **Event tracking** ([`session`], [`events`]): per-(prefix, peer)
//!    state machines handle announcements, explicit withdrawals, and
//!    *implicit* withdrawals (re-announcement without the tag);
//!    observations are correlated across peers into prefix-level
//!    [`events::BlackholeEvent`]s; RIB-dump initialization uses start
//!    time zero; the 5-minute grouping of §9 collapses operators' ON/OFF
//!    probing into [`events::BlackholePeriod`]s.
//! 3. **Analytics** ([`analytics`]): Table 3 (per-dataset visibility),
//!    Table 4 (by provider type), Fig. 4 (daily adoption series), Fig. 5
//!    (prefix-count CDies per provider/user), Fig. 6 (per-country),
//!    Fig. 7(b) (providers per event), Fig. 7(c) (AS-distance incl. the
//!    bundling "no-path" share), Fig. 8 (durations).
//! 4. **Reference data** ([`refdata`]): the *public* metadata the
//!    methodology is allowed to consult (PeeringDB LANs and route
//!    servers, PeeringDB/CAIDA classification, RIR countries, collector
//!    session metadata) — never the simulator's ground truth.
//!
//! The inference runs as **streaming sessions**: a
//! [`session::SessionBuilder`] assembles an owned
//! [`session::InferenceSession`] (dictionary/reference data behind
//! `Arc`), elements arrive via `push` or from any
//! [`bh_routing::ElemSource`] — the live simulator, an in-memory slice,
//! or a constant-memory MRT archive reader — and
//! [`shard::ShardedSession`] hash-partitions the stream by prefix across
//! worker threads with a deterministic, bit-identical merge.

pub mod analytics;
pub mod events;
pub mod refdata;
pub mod session;
pub mod shard;

pub use analytics::{
    daily_series, distance_histogram, durations, per_country, prefixes_per_provider,
    prefixes_per_user, providers_per_event, table3, table4, DailyPoint, TypeRow, VisibilityRow,
};
pub use events::{group_events, BlackholeEvent, BlackholePeriod, DetectionDistance, ProviderId};
pub use refdata::ReferenceData;
pub use session::{
    DatasetVisibility, Detection, EngineConfig, EngineStats, InferenceResult, InferenceSession,
    SessionBuilder, SessionCheckpoint,
};
pub use shard::ShardedSession;

/// Everything a pipeline consumer needs, in one import:
/// `use bh_core::prelude::*;`.
pub mod prelude {
    pub use crate::analytics::{
        daily_series, distance_histogram, durations, per_country, prefixes_per_provider,
        prefixes_per_user, providers_per_event, table3, table4, DailyPoint, TypeRow, VisibilityRow,
    };
    pub use crate::events::{
        group_events, BlackholeEvent, BlackholePeriod, DetectionDistance, ProviderId,
    };
    pub use crate::refdata::ReferenceData;
    pub use crate::session::{
        DatasetVisibility, Detection, EngineConfig, EngineStats, InferenceResult, InferenceSession,
        SessionBuilder, SessionCheckpoint,
    };
    pub use crate::shard::ShardedSession;
}
