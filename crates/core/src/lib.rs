//! # bh-core — the paper's contribution: BGP blackholing inference
//!
//! Implements the full methodology of Giotsas et al. (IMC 2017), §4:
//!
//! 1. **Dictionary-driven detection** ([`session`]): announcements carrying
//!    a community from the documented blackhole dictionary are candidate
//!    blackholings; shared/ambiguous communities are resolved via the AS
//!    path; IXP blackholing is detected via the route-server ASN on the
//!    path or a peer-ip inside a PeeringDB peering LAN; the blackholing
//!    *user* is the AS-hop before the provider (prepending removed), the
//!    peer-as for route-server views, or the origin for bundled
//!    detections.
//! 2. **Event tracking** ([`session`], [`events`]): per-(prefix, peer)
//!    state machines handle announcements, explicit withdrawals, and
//!    *implicit* withdrawals (re-announcement without the tag);
//!    observations are correlated across peers into prefix-level
//!    [`events::BlackholeEvent`]s; RIB-dump initialization uses start
//!    time zero; the 5-minute grouping of §9 collapses operators' ON/OFF
//!    probing into [`events::BlackholePeriod`]s.
//! 3. **Analytics** ([`analytics`], [`accumulate`]): Table 3
//!    (per-dataset visibility), Table 4 (by provider type), Fig. 4
//!    (daily adoption series), Fig. 5 (prefix-count CDFs per
//!    provider/user), Fig. 6 (per-country), Fig. 7(b) (providers per
//!    event), Fig. 7(c) (AS-distance incl. the bundling "no-path"
//!    share), Fig. 8 (durations and §9 grouped periods). Every metric
//!    is a mergeable one-pass [`accumulate::EventAccumulator`]; the
//!    batch functions are thin wrappers, and the
//!    [`accumulate::AnalyticsPipeline`] multiplexes one event stream
//!    into all of them — from `drain_closed_into` mid-stream or per
//!    shard with a deterministic merge at the barrier.
//! 4. **Reference data** ([`refdata`]): the *public* metadata the
//!    methodology is allowed to consult (PeeringDB LANs and route
//!    servers, PeeringDB/CAIDA classification, RIR countries, collector
//!    session metadata) — never the simulator's ground truth.
//!
//! The inference runs as **streaming sessions**: a
//! [`session::SessionBuilder`] assembles an owned
//! [`session::InferenceSession`] (dictionary/reference data behind
//! `Arc`), elements arrive via `push` or from any
//! [`bh_routing::ElemSource`] — the live simulator, an in-memory slice,
//! or a constant-memory MRT archive reader — and
//! [`shard::ShardedSession`] hash-partitions the stream by prefix across
//! worker threads with a deterministic, bit-identical merge.

pub mod accumulate;
pub mod analytics;
pub mod confusion;
pub mod events;
pub mod refdata;
pub mod session;
pub mod shard;

pub use accumulate::{
    AnalyticsConfig, AnalyticsPipeline, AnalyticsReport, EventAccumulator, EventCollector,
};
pub use analytics::{
    blackholed_prefixes, daily_series, distance_histogram, durations, per_country,
    prefixes_per_provider, prefixes_per_user, providers_per_event, table3, table4,
    CountryAccumulator, DailyPoint, DailySeriesAccumulator, DistanceAccumulator,
    DurationAccumulator, PrefixSetAccumulator, ProviderPrefixAccumulator,
    ProvidersPerEventAccumulator, TypeAccumulator, TypeRow, UserPrefixAccumulator,
    VisibilityAccumulator, VisibilityRow,
};
pub use confusion::{
    score_events, ConfusionAccumulator, ConfusionConfig, ConfusionReport, LabelKind, TruthLabel,
};
pub use events::{
    group_events, BlackholeEvent, BlackholePeriod, DetectionDistance, PeriodAccumulator,
    ProviderId, SequencedEvent,
};
pub use refdata::ReferenceData;
pub use session::{
    DatasetVisibility, Detection, EngineConfig, EngineStats, InferenceResult, InferenceSession,
    SessionBuilder, SessionCheckpoint, StreamSummary,
};
pub use shard::ShardedSession;

/// Everything a pipeline consumer needs, in one import:
/// `use bh_core::prelude::*;`.
pub mod prelude {
    pub use crate::accumulate::{
        AnalyticsConfig, AnalyticsPipeline, AnalyticsReport, EventAccumulator, EventCollector,
    };
    pub use crate::analytics::{
        blackholed_prefixes, daily_series, distance_histogram, durations, per_country,
        prefixes_per_provider, prefixes_per_user, providers_per_event, table3, table4,
        CountryAccumulator, DailyPoint, DailySeriesAccumulator, DistanceAccumulator,
        DurationAccumulator, PrefixSetAccumulator, ProviderPrefixAccumulator,
        ProvidersPerEventAccumulator, TypeAccumulator, TypeRow, UserPrefixAccumulator,
        VisibilityAccumulator, VisibilityRow,
    };
    pub use crate::confusion::{
        score_events, ConfusionAccumulator, ConfusionConfig, ConfusionReport, LabelKind, TruthLabel,
    };
    pub use crate::events::{
        group_events, BlackholeEvent, BlackholePeriod, DetectionDistance, PeriodAccumulator,
        ProviderId, SequencedEvent,
    };
    pub use crate::refdata::ReferenceData;
    pub use crate::session::{
        DatasetVisibility, Detection, EngineConfig, EngineStats, InferenceResult, InferenceSession,
        SessionBuilder, SessionCheckpoint, StreamSummary,
    };
    pub use crate::shard::ShardedSession;
}
