//! The blackholing inference engine — §4.2 of the paper, faithfully:
//!
//! * dictionary-driven tagging of announcements,
//! * disambiguation of shared communities via the AS path,
//! * IXP detection via route-server ASN on the path *or* peer-ip inside a
//!   PeeringDB peering LAN,
//! * blackholing-user inference (the AS-hop before the provider, after
//!   prepending removal; the peer-as for route-server views; the origin
//!   for bundled detections),
//! * per-(prefix, peer) state with explicit *and* implicit withdrawals,
//! * cross-peer correlation into prefix-level events,
//! * initialization from a RIB dump with "starting time zero",
//! * a community/prefix-length census feeding the extended-dictionary
//!   inference (Fig. 2).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::bogon::BogonFilter;
use bh_bgp_types::community::Community;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_irr::{BlackholeDictionary, CommunityPrefixCensus};
use bh_routing::{BgpElem, DataSource, ElemType, PeerKey};

use crate::events::{BlackholeEvent, DetectionDistance, ProviderId};
use crate::refdata::ReferenceData;

/// One provider detection extracted from a single announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The inferred provider.
    pub provider: ProviderId,
    /// The inferred blackholing user.
    pub user: Option<Asn>,
    /// Collector-to-provider distance (Fig. 7(c)).
    pub distance: DetectionDistance,
    /// The triggering community.
    pub community: Community,
}

/// Counters for engine behavior (useful for pipeline benchmarking and
/// methodology diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Elements processed.
    pub elems: u64,
    /// Announcements carrying at least one dictionary community.
    pub tagged_announcements: u64,
    /// Announcements dropped by data cleaning (bogons).
    pub cleaned: u64,
    /// Detections discarded because an ambiguous community had no
    /// candidate provider on the AS path.
    pub ambiguous_unresolved: u64,
    /// Implicit withdrawals observed (re-announcement without tags).
    pub implicit_withdrawals: u64,
    /// Explicit withdrawals that ended a peer observation.
    pub explicit_withdrawals: u64,
    /// Detections that relied on community bundling (no provider on path).
    pub bundled_detections: u64,
}

/// Per-dataset visibility accumulators (Table 3 inputs).
#[derive(Debug, Clone, Default)]
pub struct DatasetVisibility {
    /// Providers observed via this platform.
    pub providers: BTreeSet<ProviderId>,
    /// Users observed via this platform.
    pub users: BTreeSet<Asn>,
    /// Prefixes observed via this platform.
    pub prefixes: BTreeSet<Ipv4Prefix>,
}

#[derive(Debug, Default)]
struct OpenEvent {
    providers: BTreeSet<ProviderId>,
    users: BTreeSet<Asn>,
    start: SimTime,
    open_peers: BTreeSet<PeerKey>,
    all_peers: BTreeSet<PeerKey>,
    datasets: BTreeSet<DataSource>,
    distances: BTreeSet<DetectionDistance>,
    bundled: bool,
}

/// Configuration toggles — the ablation switches called out in DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Detect via community bundling when the provider is absent from the
    /// path (§4.2; disabling this is the Fig. 7(c) ablation — the paper
    /// credits bundling with ~half of all inferences).
    pub bundling_detection: bool,
    /// Track state per (prefix, peer) and correlate (the paper's method).
    /// Disabled, state collapses to per-prefix only — the Fig. 8
    /// ablation showing why per-peer tracking matters.
    pub per_peer_state: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { bundling_detection: true, per_peer_state: true }
    }
}

/// The engine.
pub struct InferenceEngine<'a> {
    dict: &'a BlackholeDictionary,
    refdata: &'a ReferenceData,
    config: EngineConfig,
    bogons: BogonFilter,
    census: CommunityPrefixCensus,
    open: HashMap<Ipv4Prefix, OpenEvent>,
    closed: Vec<BlackholeEvent>,
    per_dataset: BTreeMap<DataSource, DatasetVisibility>,
    stats: EngineStats,
}

impl<'a> InferenceEngine<'a> {
    /// Build an engine with default configuration.
    pub fn new(dict: &'a BlackholeDictionary, refdata: &'a ReferenceData) -> Self {
        Self::with_config(dict, refdata, EngineConfig::default())
    }

    /// Build with explicit configuration (ablations).
    pub fn with_config(
        dict: &'a BlackholeDictionary,
        refdata: &'a ReferenceData,
        config: EngineConfig,
    ) -> Self {
        InferenceEngine {
            dict,
            refdata,
            config,
            bogons: BogonFilter::new(),
            census: CommunityPrefixCensus::new(),
            open: HashMap::new(),
            closed: Vec::new(),
            per_dataset: BTreeMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The community/prefix-length census (Fig. 2, extended dictionary).
    pub fn census(&self) -> &CommunityPrefixCensus {
        &self.census
    }

    /// Per-dataset visibility accumulators.
    pub fn dataset_visibility(&self) -> &BTreeMap<DataSource, DatasetVisibility> {
        &self.per_dataset
    }

    /// Initialize from a RIB dump: tagged prefixes present in the table
    /// start with time zero ("we cannot accurately pinpoint the start
    /// time … we use an initial starting time of zero").
    pub fn initialize_from_rib(&mut self, state: &[BgpElem]) {
        for elem in state {
            if elem.elem_type == ElemType::Announce {
                self.process_announce(elem, SimTime::ZERO);
            }
        }
    }

    /// Process one element in arrival order.
    pub fn process(&mut self, elem: &BgpElem) {
        match elem.elem_type {
            ElemType::Announce => self.process_announce(elem, elem.time),
            ElemType::Withdraw => self.process_withdraw(elem),
        }
    }

    /// Process a whole stream.
    pub fn process_stream(&mut self, elems: &[BgpElem]) {
        for elem in elems {
            self.process(elem);
        }
    }

    /// Finish: close nothing (events still active stay open with
    /// `end: None`) and return every event plus final census and stats.
    pub fn finish(mut self) -> InferenceResult {
        let mut events = std::mem::take(&mut self.closed);
        let open: Vec<Ipv4Prefix> = self.open.keys().copied().collect();
        for prefix in open {
            let oe = self.open.remove(&prefix).expect("key exists");
            events.push(Self::to_event(prefix, oe, None));
        }
        events.sort_by_key(|e| (e.start, e.prefix));
        InferenceResult {
            events,
            census: self.census,
            stats: self.stats,
            per_dataset: self.per_dataset,
        }
    }

    // ---- internals -------------------------------------------------------

    fn to_event(prefix: Ipv4Prefix, oe: OpenEvent, end: Option<SimTime>) -> BlackholeEvent {
        BlackholeEvent {
            prefix,
            providers: oe.providers,
            users: oe.users,
            start: oe.start,
            end,
            peer_count: oe.all_peers.len(),
            datasets: oe.datasets,
            distances: oe.distances,
            bundled_detection: oe.bundled,
        }
    }

    /// The §4.2 detection procedure for one announcement.
    pub fn detect(&mut self, elem: &BgpElem) -> Vec<Detection> {
        let mut detections: Vec<Detection> = Vec::new();
        let path = elem.as_path.without_prepending();

        let mut consider = |engine: &mut Self, community: Community, candidates: Vec<Asn>| {
            if candidates.is_empty() {
                return;
            }
            let unambiguous = candidates.len() == 1;
            let mut resolved_any = false;
            for candidate in candidates {
                if let Some(ixp) = engine.refdata.ixp_of_route_server(candidate) {
                    // IXP provider: route-server ASN on path, or peer-ip
                    // inside the IXP's peering LAN.
                    if path.contains(candidate) {
                        let user = path.hop_before(candidate);
                        let distance = if engine.refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp) {
                            DetectionDistance::Hops(0)
                        } else {
                            DetectionDistance::Hops(
                                (path.distance_from_peer(candidate).unwrap_or(0) + 1) as u8,
                            )
                        };
                        detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user,
                            distance,
                            community,
                        });
                        resolved_any = true;
                    } else if engine.refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp) {
                        detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user: Some(elem.peer_asn),
                            distance: DetectionDistance::Hops(0),
                            community,
                        });
                        resolved_any = true;
                    }
                } else if path.contains(candidate) {
                    // The hop before the provider — skipping route-server
                    // ASNs, which appear on paths when a provider learned
                    // the route across an IXP (the RS is not the user).
                    let flat = path.asns();
                    let user = flat
                        .iter()
                        .position(|&a| a == candidate)
                        .and_then(|pos| {
                            flat[pos + 1..]
                                .iter()
                                .find(|a| engine.refdata.ixp_of_route_server(**a).is_none())
                                .copied()
                        })
                        .or(Some(candidate));
                    detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user,
                        distance: DetectionDistance::Hops(
                            (path.distance_from_peer(candidate).unwrap_or(0) + 1) as u8,
                        ),
                        community,
                    });
                    resolved_any = true;
                } else if unambiguous && engine.config.bundling_detection {
                    // Bundled community: the provider never propagated the
                    // route, but the unambiguous tag identifies it.
                    detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user: path.origin(),
                        distance: DetectionDistance::NoPath,
                        community,
                    });
                    engine.stats.bundled_detections += 1;
                    resolved_any = true;
                }
            }
            if !resolved_any {
                engine.stats.ambiguous_unresolved += 1;
            }
        };

        for community in elem.communities.iter() {
            let candidates = self.dict.providers_for(community);
            consider(self, community, candidates);
        }
        for large in elem.communities.iter_large() {
            let candidates = self.dict.providers_for_large(large);
            // Attribute large-community detections to a synthetic classic
            // community for uniform bookkeeping (high half of the global
            // admin, value 666 — purely presentational).
            let display = Community::from_parts((large.global_admin & 0xFFFF) as u16, 666);
            consider(self, display, candidates);
        }

        detections.sort_by_key(|d| d.provider);
        detections.dedup_by_key(|d| d.provider);
        detections
    }

    fn process_announce(&mut self, elem: &BgpElem, start_time: SimTime) {
        self.stats.elems += 1;
        // Data cleaning (§3): bogons and <-/8 never considered.
        if !self.bogons.is_routable(&elem.prefix) {
            self.stats.cleaned += 1;
            return;
        }
        // Census of every community on every announcement (Fig. 2 input).
        let communities: Vec<Community> = elem.communities.iter().collect();
        self.census.record(&communities, elem.prefix.length());

        let detections = self.detect(elem);
        let peer = elem.peer_key();

        if detections.is_empty() {
            // Implicit withdrawal: previously blackholed at this peer,
            // now announced without tags (§4.2).
            if let Some(oe) = self.open.get_mut(&elem.prefix) {
                if oe.open_peers.remove(&peer) {
                    self.stats.implicit_withdrawals += 1;
                    if oe.open_peers.is_empty() {
                        let oe = self.open.remove(&elem.prefix).expect("open event exists");
                        self.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                    }
                }
            }
            return;
        }
        self.stats.tagged_announcements += 1;

        let oe = self
            .open
            .entry(elem.prefix)
            .or_insert_with(|| OpenEvent { start: start_time, ..Default::default() });
        if self.config.per_peer_state {
            oe.open_peers.insert(peer);
        } else {
            // Ablation: single logical peer — de-activations seen by any
            // peer close the event.
            oe.open_peers.insert(PeerKey {
                dataset: peer.dataset,
                collector: 0,
                peer_asn: Asn::new(0),
            });
        }
        oe.all_peers.insert(peer);
        oe.datasets.insert(elem.dataset);
        let vis = self.per_dataset.entry(elem.dataset).or_default();
        vis.prefixes.insert(elem.prefix);
        for d in &detections {
            oe.providers.insert(d.provider);
            oe.distances.insert(d.distance);
            if d.distance == DetectionDistance::NoPath {
                oe.bundled = true;
            }
            if let Some(user) = d.user {
                oe.users.insert(user);
                vis.users.insert(user);
            }
            vis.providers.insert(d.provider);
        }
    }

    fn process_withdraw(&mut self, elem: &BgpElem) {
        self.stats.elems += 1;
        let peer = if self.config.per_peer_state {
            elem.peer_key()
        } else {
            PeerKey { dataset: elem.dataset, collector: 0, peer_asn: Asn::new(0) }
        };
        if let Some(oe) = self.open.get_mut(&elem.prefix) {
            if oe.open_peers.remove(&peer) {
                self.stats.explicit_withdrawals += 1;
                if oe.open_peers.is_empty() {
                    let oe = self.open.remove(&elem.prefix).expect("open event exists");
                    self.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                }
            }
        }
    }
}

/// Everything the engine produced.
pub struct InferenceResult {
    /// All inferred events (closed ones have `end: Some(_)`).
    pub events: Vec<BlackholeEvent>,
    /// The community/prefix-length census.
    pub census: CommunityPrefixCensus,
    /// Engine counters.
    pub stats: EngineStats,
    /// Per-dataset visibility (Table 3 inputs).
    pub per_dataset: BTreeMap<DataSource, DatasetVisibility>,
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::community::CommunitySet;
    use bh_routing::{deploy, CollectorConfig};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    struct Setup {
        dict: BlackholeDictionary,
        refdata: ReferenceData,
        provider: Asn,
        community: Community,
    }

    fn setup() -> Setup {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = ReferenceData::build(&t, &d);
        let mut dict = BlackholeDictionary::default();
        let provider = Asn::new(64_777); // not in the topology: pure unit test
        let community = Community::from_parts(777, 666);
        dict.insert_validated(provider, community);
        Setup { dict, refdata, provider, community }
    }

    fn announce(
        prefix: &str,
        time: u64,
        path: &str,
        communities: Vec<Community>,
        peer: u32,
    ) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: prefix.parse().unwrap(),
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(communities),
            next_hop: None,
        }
    }

    fn withdraw(prefix: &str, time: u64, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Withdraw,
            prefix: prefix.parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    #[test]
    fn basic_event_lifecycle() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        engine.process(&withdraw("9.9.9.9/32", 160, 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.prefix, "9.9.9.9/32".parse().unwrap());
        assert_eq!(e.start, SimTime::from_unix(100));
        assert_eq!(e.end, Some(SimTime::from_unix(160)));
        assert_eq!(e.providers, BTreeSet::from([ProviderId::As(s.provider)]));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)]));
        assert!(!e.bundled_detection);
        assert_eq!(result.stats.explicit_withdrawals, 1);
    }

    #[test]
    fn user_is_hop_before_provider_after_deprepending() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64777 64999 64999 64999",
            vec![s.community],
            100,
        ));
        let result = engine.finish();
        assert_eq!(result.events[0].users, BTreeSet::from([Asn::new(64_999)]));
        // Distance counts deprepended hops: peer(100)=pos0, provider pos1
        // → distance 2 per the paper's 1-indexed convention.
        assert!(result.events[0].distances.contains(&DetectionDistance::Hops(2)));
    }

    #[test]
    fn bundled_detection_when_provider_absent() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert!(e.bundled_detection);
        assert!(e.distances.contains(&DetectionDistance::NoPath));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)])); // origin
        assert_eq!(result.stats.bundled_detections, 1);
    }

    #[test]
    fn bundling_ablation_disables_no_path_detection() {
        let s = setup();
        let config = EngineConfig { bundling_detection: false, ..Default::default() };
        let mut engine = InferenceEngine::with_config(&s.dict, &s.refdata, config);
        engine.process(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = engine.finish();
        assert!(result.events.is_empty());
    }

    #[test]
    fn ambiguous_community_requires_path_presence() {
        let s = setup();
        let mut dict = s.dict.clone();
        let shared = Community::from_parts(0, 666);
        dict.insert_validated(Asn::new(501), shared);
        dict.insert_validated(Asn::new(502), shared);
        let mut engine = InferenceEngine::new(&dict, &s.refdata);
        // Neither 501 nor 502 on path: skipped.
        engine.process(&announce("9.9.9.9/32", 100, "100 200 300", vec![shared], 100));
        assert_eq!(engine.stats().ambiguous_unresolved, 1);
        // 502 on path: resolved to 502 only.
        engine.process(&announce("8.8.8.8/32", 100, "100 502 300", vec![shared], 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::As(Asn::new(502))]));
    }

    #[test]
    fn implicit_withdrawal_closes_event() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        // Re-announcement without the tag: implicit withdrawal.
        engine.process(&announce("9.9.9.9/32", 200, "100 64777 64999", vec![], 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(200)));
        assert_eq!(result.stats.implicit_withdrawals, 1);
    }

    #[test]
    fn per_peer_correlation_takes_last_close() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        engine.process(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        // First peer withdraws early; second keeps it until 500.
        engine.process(&withdraw("9.9.9.9/32", 150, 100));
        {
            // Still open: only one of two peers closed.
            assert_eq!(engine.open.len(), 1);
        }
        engine.process(&withdraw("9.9.9.9/32", 500, 200));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].start, SimTime::from_unix(100));
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(500)));
        assert_eq!(result.events[0].peer_count, 2);
    }

    #[test]
    fn per_peer_ablation_closes_on_first_withdrawal() {
        let s = setup();
        let config = EngineConfig { per_peer_state: false, ..Default::default() };
        let mut engine = InferenceEngine::with_config(&s.dict, &s.refdata, config);
        engine.process(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        engine.process(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        engine.process(&withdraw("9.9.9.9/32", 150, 100));
        let result = engine.finish();
        // Collapsed state: the early withdrawal ends the event.
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(150)));
    }

    #[test]
    fn rib_initialization_uses_time_zero() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        let rib = vec![announce("9.9.9.9/32", 10_000, "100 64777 64999", vec![s.community], 100)];
        engine.initialize_from_rib(&rib);
        engine.process(&withdraw("9.9.9.9/32", 10_500, 100));
        let result = engine.finish();
        assert_eq!(result.events[0].start, SimTime::ZERO);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(10_500)));
    }

    #[test]
    fn on_off_pattern_yields_multiple_events() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        for k in 0..3u64 {
            let t0 = 1000 + k * 300;
            engine.process(&announce("9.9.9.9/32", t0, "100 64777 64999", vec![s.community], 100));
            engine.process(&withdraw("9.9.9.9/32", t0 + 60, 100));
        }
        let result = engine.finish();
        assert_eq!(result.events.len(), 3);
        for e in &result.events {
            assert_eq!(e.duration(SimTime::ZERO).as_secs(), 60);
        }
    }

    #[test]
    fn open_events_survive_finish_with_no_end() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, None);
    }

    #[test]
    fn bogon_announcements_are_cleaned() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        engine.process(&announce("10.0.0.1/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = engine.finish();
        assert!(result.events.is_empty());
        assert_eq!(result.stats.cleaned, 1);
    }

    #[test]
    fn ixp_detection_via_route_server_on_path() {
        // Use a real generated topology so refdata has IXPs.
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = ReferenceData::build(&t, &d);
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut engine = InferenceEngine::new(&dict, &refdata);
        let member = ixp.members[0];
        let elem = announce(
            "9.9.9.9/32",
            100,
            &format!("100 {} {}", ixp.route_server_asn.value(), member.value()),
            vec![Community::BLACKHOLE],
            100,
        );
        engine.process(&elem);
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        assert_eq!(result.events[0].users, BTreeSet::from([member]));
    }

    #[test]
    fn ixp_detection_via_peer_ip_in_lan() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = ReferenceData::build(&t, &d);
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut engine = InferenceEngine::new(&dict, &refdata);
        let member = ixp.members[0];
        let mut elem = announce(
            "9.9.9.9/32",
            100,
            &format!("{member_v}", member_v = member.value()),
            vec![Community::BLACKHOLE],
            member.value(),
        );
        elem.peer_ip = ixp.member_lan_ip(member).map(std::net::IpAddr::V4).unwrap();
        elem.dataset = DataSource::Pch;
        engine.process(&elem);
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        // User = peer-as; distance 0 (collector at the IXP).
        assert_eq!(e.users, BTreeSet::from([member]));
        assert!(e.distances.contains(&DetectionDistance::Hops(0)));
    }

    #[test]
    fn census_records_all_tagged_and_untagged_communities() {
        let s = setup();
        let mut engine = InferenceEngine::new(&s.dict, &s.refdata);
        let other = Community::from_parts(555, 80);
        engine.process(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64999",
            vec![s.community, other],
            100,
        ));
        engine.process(&announce("7.0.0.0/16", 100, "100 300", vec![other], 100));
        let result = engine.finish();
        assert_eq!(result.census.occurrences(s.community), 1);
        assert_eq!(result.census.occurrences(other), 2);
        assert!(result.census.cooccurs(other, s.community));
    }

    #[test]
    fn multi_provider_bundle_yields_multi_provider_event() {
        let s = setup();
        let mut dict = s.dict.clone();
        let c2 = Community::from_parts(888, 666);
        dict.insert_validated(Asn::new(64_888), c2);
        let mut engine = InferenceEngine::new(&dict, &s.refdata);
        engine.process(&announce("9.9.9.9/32", 100, "100 64999", vec![s.community, c2], 100));
        let result = engine.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers.len(), 2);
    }
}
