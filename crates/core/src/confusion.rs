//! Ground-truth scoring: confusion matrices over inferred events.
//!
//! The adversarial workloads (`bh-workloads`) know exactly what they
//! injected — every blackhole request, hijack, leak, and
//! traffic-engineering announcement becomes a [`TruthLabel`] carrying
//! the prefix, the active window, and whether the detector *should*
//! fire on it. This module scores an inference run against those
//! labels:
//!
//! * a label with `expect_detection` matched by at least one event is a
//!   **true positive**; unmatched, a **false negative**;
//! * an event matching no expected label is a **false positive**,
//!   broken down by the *kind* of adversarial traffic it overlapped
//!   (hijack, route leak, re-routing) or `unlabeled` when it matched
//!   nothing at all;
//! * precision/recall fall out of the counts.
//!
//! Matching is exact on prefix and overlap-with-slack on time: the
//! detector closes events at the last tagged update it saw, which can
//! trail the planned withdraw by one propagation round.
//!
//! [`ConfusionAccumulator`] implements [`EventAccumulator`], so scoring
//! streams through the same one-pass machinery as every paper metric
//! (and merges across shards); [`score_events`] is the batch wrapper.

use std::collections::BTreeMap;
use std::fmt;

use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};

use crate::accumulate::EventAccumulator;
use crate::events::BlackholeEvent;

/// What kind of injected traffic a [`TruthLabel`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelKind {
    /// A genuine RTBH request (the cooperative signal).
    Blackhole,
    /// A sub-prefix hijack carrying stolen trigger communities.
    Hijack,
    /// A leaked or mis-scoped tagged route (leak-vs-blackhole stress).
    RouteLeak,
    /// Prepending-based traffic engineering (the re-routing
    /// alternative to blackholing; a negative control).
    Reroute,
    /// An announcement decorated with stolen non-blackhole *tag*
    /// communities (location/informational) — must never be inferred as
    /// blackholing; the classifier's negative controls suppress it.
    Tagged,
}

impl LabelKind {
    pub fn label(self) -> &'static str {
        match self {
            LabelKind::Blackhole => "blackhole",
            LabelKind::Hijack => "hijack",
            LabelKind::RouteLeak => "route-leak",
            LabelKind::Reroute => "reroute",
            LabelKind::Tagged => "tagged",
        }
    }
}

/// One simulator-side ground-truth annotation: what was injected on
/// `prefix` during `[start, end]`, and whether the detector should
/// report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthLabel {
    pub prefix: Ipv4Prefix,
    pub start: SimTime,
    pub end: SimTime,
    pub kind: LabelKind,
    /// `true` for blackhole events the detector is expected to find;
    /// `false` for adversarial traffic where any matching detection is
    /// a false positive.
    pub expect_detection: bool,
}

impl TruthLabel {
    fn overlaps(&self, event: &BlackholeEvent, slack: SimDuration) -> bool {
        if event.prefix != self.prefix {
            return false;
        }
        let event_end = event.end.unwrap_or(SimTime(u64::MAX));
        let label_start = SimTime(self.start.0.saturating_sub(slack.0));
        let label_end = SimTime(self.end.0.saturating_add(slack.0));
        event.start <= label_end && event_end >= label_start
    }
}

/// Matching tolerances for [`ConfusionAccumulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionConfig {
    /// Time slack added to both ends of each label window before
    /// overlap matching.
    pub slack: SimDuration,
}

impl Default for ConfusionConfig {
    fn default() -> Self {
        // One propagation round plus the session's event-coalescing
        // horizon comfortably fit in ten minutes at every study scale.
        ConfusionConfig { slack: SimDuration::mins(10) }
    }
}

/// The scored outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionReport {
    /// Scenario name (workload-provided, for display).
    pub scenario: String,
    /// Labels with `expect_detection`.
    pub expected: usize,
    /// Expected labels matched by at least one event.
    pub true_positives: usize,
    /// Expected labels no event matched.
    pub false_negatives: usize,
    /// Total inferred events observed.
    pub detected_events: usize,
    /// Events matching no expected label.
    pub false_positives: usize,
    /// False positives broken down by the adversarial label kind they
    /// overlapped.
    pub fp_by_kind: BTreeMap<LabelKind, usize>,
    /// False positives overlapping no label of any kind.
    pub fp_unlabeled: usize,
}

impl ConfusionReport {
    /// Fraction of detections that were real (1.0 when nothing was
    /// detected — no detections means no false alarms).
    pub fn precision(&self) -> f64 {
        if self.detected_events == 0 {
            1.0
        } else {
            (self.detected_events - self.false_positives) as f64 / self.detected_events as f64
        }
    }

    /// Fraction of expected blackholes found (1.0 when nothing was
    /// expected).
    pub fn recall(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.expected as f64
        }
    }

    /// Perfect score: every expectation met, no false alarms.
    pub fn is_perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

impl fmt::Display for ConfusionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scenario: {}", self.scenario)?;
        writeln!(
            f,
            "  expected {:>5}   detected {:>5}   precision {:>6.3}   recall {:>6.3}",
            self.expected,
            self.detected_events,
            self.precision(),
            self.recall()
        )?;
        writeln!(
            f,
            "  TP {:>5}   FN {:>5}   FP {:>5}",
            self.true_positives, self.false_negatives, self.false_positives
        )?;
        if self.false_positives > 0 {
            write!(f, "  FP breakdown:")?;
            for (kind, n) in &self.fp_by_kind {
                write!(f, " {}={}", kind.label(), n)?;
            }
            if self.fp_unlabeled > 0 {
                write!(f, " unlabeled={}", self.fp_unlabeled)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Streams inferred events against a fixed label set, producing a
/// [`ConfusionReport`].
///
/// Merge semantics: two accumulators built over the *same* labels and
/// fed disjoint event streams merge by OR-ing per-label matches and
/// summing the false-positive counts — the sharded-session contract.
#[derive(Debug, Clone)]
pub struct ConfusionAccumulator {
    scenario: String,
    labels: Vec<TruthLabel>,
    config: ConfusionConfig,
    matched: Vec<bool>,
    detected_events: usize,
    false_positives: usize,
    fp_by_kind: BTreeMap<LabelKind, usize>,
    fp_unlabeled: usize,
}

impl ConfusionAccumulator {
    pub fn new(scenario: impl Into<String>, labels: Vec<TruthLabel>) -> Self {
        Self::with_config(scenario, labels, ConfusionConfig::default())
    }

    pub fn with_config(
        scenario: impl Into<String>,
        labels: Vec<TruthLabel>,
        config: ConfusionConfig,
    ) -> Self {
        let matched = vec![false; labels.len()];
        ConfusionAccumulator {
            scenario: scenario.into(),
            labels,
            config,
            matched,
            detected_events: 0,
            false_positives: 0,
            fp_by_kind: BTreeMap::new(),
            fp_unlabeled: 0,
        }
    }
}

impl EventAccumulator for ConfusionAccumulator {
    type Output = ConfusionReport;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.detected_events += 1;
        let mut hit_expected = false;
        let mut overlapped_kind: Option<LabelKind> = None;
        for (idx, label) in self.labels.iter().enumerate() {
            if !label.overlaps(event, self.config.slack) {
                continue;
            }
            if label.expect_detection {
                self.matched[idx] = true;
                hit_expected = true;
            } else if overlapped_kind.is_none() {
                overlapped_kind = Some(label.kind);
            }
        }
        if hit_expected {
            return;
        }
        self.false_positives += 1;
        match overlapped_kind {
            Some(kind) => *self.fp_by_kind.entry(kind).or_insert(0) += 1,
            None => self.fp_unlabeled += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.labels.len(), other.labels.len(), "merge requires equal labels");
        for (mine, theirs) in self.matched.iter_mut().zip(other.matched) {
            *mine |= theirs;
        }
        self.detected_events += other.detected_events;
        self.false_positives += other.false_positives;
        for (kind, n) in other.fp_by_kind {
            *self.fp_by_kind.entry(kind).or_insert(0) += n;
        }
        self.fp_unlabeled += other.fp_unlabeled;
    }

    fn finalize(self) -> ConfusionReport {
        let expected = self.labels.iter().filter(|l| l.expect_detection).count();
        let true_positives = self
            .labels
            .iter()
            .zip(&self.matched)
            .filter(|(l, m)| l.expect_detection && **m)
            .count();
        ConfusionReport {
            scenario: self.scenario,
            expected,
            true_positives,
            false_negatives: expected - true_positives,
            detected_events: self.detected_events,
            false_positives: self.false_positives,
            fp_by_kind: self.fp_by_kind,
            fp_unlabeled: self.fp_unlabeled,
        }
    }
}

/// Batch wrapper: score a materialized event list against labels.
pub fn score_events(
    scenario: impl Into<String>,
    events: &[BlackholeEvent],
    labels: Vec<TruthLabel>,
) -> ConfusionReport {
    let mut acc = ConfusionAccumulator::new(scenario, labels);
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::BlackholeEvent;

    fn event(prefix: &str, start: u64, end: Option<u64>) -> BlackholeEvent {
        BlackholeEvent {
            prefix: prefix.parse().unwrap(),
            providers: Default::default(),
            users: Default::default(),
            start: SimTime(start),
            end: end.map(SimTime),
            peer_count: 1,
            datasets: Default::default(),
            distances: Default::default(),
            bundled_detection: false,
        }
    }

    fn label(prefix: &str, start: u64, end: u64, kind: LabelKind, expect: bool) -> TruthLabel {
        TruthLabel {
            prefix: prefix.parse().unwrap(),
            start: SimTime(start),
            end: SimTime(end),
            kind,
            expect_detection: expect,
        }
    }

    #[test]
    fn perfect_run_scores_perfect() {
        let labels = vec![label("10.0.0.1/32", 1_000, 2_000, LabelKind::Blackhole, true)];
        let events = vec![event("10.0.0.1/32", 1_010, Some(1_900))];
        let report = score_events("baseline", &events, labels);
        assert!(report.is_perfect());
        assert_eq!(report.true_positives, 1);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 1.0);
    }

    #[test]
    fn hijack_detection_is_a_classified_false_positive() {
        let labels = vec![
            label("10.0.0.1/32", 1_000, 2_000, LabelKind::Blackhole, true),
            label("20.0.0.7/32", 1_000, 2_000, LabelKind::Hijack, false),
        ];
        let events =
            vec![event("10.0.0.1/32", 1_010, Some(1_900)), event("20.0.0.7/32", 1_020, None)];
        let report = score_events("hijack", &events, labels);
        assert_eq!(report.true_positives, 1);
        assert_eq!(report.false_positives, 1);
        assert_eq!(report.fp_by_kind.get(&LabelKind::Hijack), Some(&1));
        assert_eq!(report.fp_unlabeled, 0);
        assert!(report.precision() < 1.0);
    }

    #[test]
    fn missed_expected_label_is_a_false_negative() {
        let labels = vec![label("10.0.0.1/32", 1_000, 2_000, LabelKind::Blackhole, true)];
        let report = score_events("missed", &[], labels);
        assert_eq!(report.false_negatives, 1);
        assert_eq!(report.recall(), 0.0);
        assert_eq!(report.precision(), 1.0, "no detections, no false alarms");
    }

    #[test]
    fn slack_tolerates_trailing_events_but_not_strays() {
        let labels = vec![label("10.0.0.1/32", 10_000, 20_000, LabelKind::Blackhole, true)];
        // Ends 5 minutes after the planned withdraw: matched.
        let trailing = vec![event("10.0.0.1/32", 10_100, Some(20_300))];
        assert!(score_events("s", &trailing, labels.clone()).is_perfect());
        // Starts an hour later: a false positive on the same prefix.
        let stray = vec![event("10.0.0.1/32", 24_000, Some(25_000))];
        let report = score_events("s", &stray, labels);
        assert_eq!(report.false_positives, 1);
        assert_eq!(report.fp_unlabeled, 1);
        assert_eq!(report.false_negatives, 1);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let labels = vec![
            label("10.0.0.1/32", 1_000, 2_000, LabelKind::Blackhole, true),
            label("10.0.0.2/32", 1_000, 2_000, LabelKind::Blackhole, true),
            label("20.0.0.7/32", 1_000, 2_000, LabelKind::RouteLeak, false),
        ];
        let events = vec![
            event("10.0.0.1/32", 1_010, Some(1_900)),
            event("10.0.0.2/32", 1_020, Some(1_800)),
            event("20.0.0.7/32", 1_030, None),
        ];
        let sequential = score_events("m", &events, labels.clone());

        let mut left = ConfusionAccumulator::new("m", labels.clone());
        let mut right = ConfusionAccumulator::new("m", labels);
        left.observe(&events[0]);
        right.observe(&events[1]);
        right.observe(&events[2]);
        left.merge(right);
        assert_eq!(left.finalize(), sequential);
    }
}
