//! Reference data: the *public* metadata the inference engine may use.
//!
//! The methodology never peeks at ground truth. Everything here models a
//! publicly available dataset:
//!
//! * PeeringDB: IXP peering LANs and route-server ASNs,
//! * PeeringDB + CAIDA: network-type classification,
//! * RIR delegation files: per-AS country,
//! * collector metadata: which ASes feed a collector directly
//!   (Table 3's "direct BGP feed" column).

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

use bh_bgp_types::asn::Asn;
use bh_routing::{CollectorDeployment, DataSource, FeedKind};
use bh_topology::{Classifier, IxpId, LanIndex, NetworkType, Topology};

/// Public metadata snapshot consumed by the inference engine.
#[derive(Debug)]
pub struct ReferenceData {
    lan_index: LanIndex,
    route_servers: BTreeMap<Asn, IxpId>,
    rs_by_ixp: BTreeMap<IxpId, Asn>,
    network_types: BTreeMap<Asn, NetworkType>,
    countries: BTreeMap<Asn, &'static str>,
    direct_feeds: BTreeMap<DataSource, BTreeSet<Asn>>,
}

impl ReferenceData {
    /// Build from the topology (PeeringDB/CAIDA/RIR equivalents) and the
    /// collector deployment (session metadata).
    pub fn build(topology: &Topology, deployment: &CollectorDeployment) -> Self {
        let classifier = Classifier;
        let mut route_servers = BTreeMap::new();
        let mut rs_by_ixp = BTreeMap::new();
        for ixp in topology.ixps() {
            route_servers.insert(ixp.route_server_asn, ixp.id);
            rs_by_ixp.insert(ixp.id, ixp.route_server_asn);
        }
        let mut network_types = BTreeMap::new();
        let mut countries = BTreeMap::new();
        for info in topology.ases() {
            network_types.insert(info.asn, classifier.network_type(topology, info.asn));
            countries.insert(info.asn, info.country);
        }
        let mut direct_feeds: BTreeMap<DataSource, BTreeSet<Asn>> = BTreeMap::new();
        for session in deployment.sessions() {
            let observed = match session.feed {
                FeedKind::RouteServerView(_) => session.peer_asn,
                _ => session.peer_asn,
            };
            direct_feeds.entry(session.dataset).or_default().insert(observed);
        }
        ReferenceData {
            lan_index: topology.lan_index(),
            route_servers,
            rs_by_ixp,
            network_types,
            countries,
            direct_feeds,
        }
    }

    /// The route-server ASN of an IXP.
    pub fn route_server_of(&self, ixp: IxpId) -> Option<Asn> {
        self.rs_by_ixp.get(&ixp).copied()
    }

    /// Which IXP's peering LAN contains this address? (The PeeringDB
    /// lookup of §4.2.)
    pub fn ixp_of_peer_ip(&self, ip: IpAddr) -> Option<IxpId> {
        self.lan_index.ixp_of_ip(ip)
    }

    /// Is this ASN an IXP route server, and for which IXP?
    pub fn ixp_of_route_server(&self, asn: Asn) -> Option<IxpId> {
        self.route_servers.get(&asn).copied()
    }

    /// PeeringDB/CAIDA network type.
    pub fn network_type(&self, asn: Asn) -> NetworkType {
        self.network_types.get(&asn).copied().unwrap_or(NetworkType::Unknown)
    }

    /// RIR country.
    pub fn country(&self, asn: Asn) -> &'static str {
        self.countries.get(&asn).copied().unwrap_or("??")
    }

    /// Does this AS feed the given platform directly?
    pub fn has_direct_feed(&self, dataset: DataSource, asn: Asn) -> bool {
        self.direct_feeds.get(&dataset).is_some_and(|set| set.contains(&asn))
    }

    /// Does this AS feed *any* platform directly?
    pub fn has_any_direct_feed(&self, asn: Asn) -> bool {
        self.direct_feeds.values().any(|set| set.contains(&asn))
    }
}

#[cfg(test)]
mod tests {
    use bh_routing::{deploy, CollectorConfig};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn refdata() -> (Topology, ReferenceData) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let r = ReferenceData::build(&t, &d);
        (t, r)
    }

    #[test]
    fn route_servers_resolve_to_ixps() {
        let (t, r) = refdata();
        for ixp in t.ixps() {
            assert_eq!(r.ixp_of_route_server(ixp.route_server_asn), Some(ixp.id));
        }
        assert_eq!(r.ixp_of_route_server(Asn::new(1)), None);
    }

    #[test]
    fn lan_lookup_resolves_member_ips() {
        let (t, r) = refdata();
        let ixp = &t.ixps()[0];
        let member = ixp.members[0];
        let ip = ixp.member_lan_ip(member).unwrap();
        assert_eq!(r.ixp_of_peer_ip(IpAddr::V4(ip)), Some(ixp.id));
        assert_eq!(r.ixp_of_peer_ip("8.8.8.8".parse().unwrap()), None);
    }

    #[test]
    fn types_and_countries_are_populated() {
        let (t, r) = refdata();
        for info in t.ases() {
            assert_ne!(r.country(info.asn), "??");
            let _ = r.network_type(info.asn);
        }
        assert_eq!(r.country(Asn::new(4_000_000_000)), "??");
        assert_eq!(r.network_type(Asn::new(4_000_000_000)), NetworkType::Unknown);
    }

    #[test]
    fn direct_feed_flags_match_deployment() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let r = ReferenceData::build(&t, &d);
        for session in d.sessions() {
            assert!(r.has_direct_feed(session.dataset, session.peer_asn));
            assert!(r.has_any_direct_feed(session.peer_asn));
        }
    }
}
