//! Mergeable one-pass accumulators: the streaming analytics layer.
//!
//! The paper derives every table and figure from a single longitudinal
//! pass over years of BGP updates. This module makes the analytics layer
//! match that shape: an [`EventAccumulator`] folds a stream of
//! [`BlackholeEvent`]s (plus the session's per-dataset visibility) into
//! a paper metric, can be **merged** with a sibling accumulator fed a
//! disjoint part of the stream, and **finalizes** into exactly what the
//! corresponding batch function returns.
//!
//! The contract every implementation upholds:
//!
//! * `observe` is **order-insensitive**: any permutation of the same
//!   event multiset finalizes to the same output.
//! * `merge` is **associative and commutative** (a property test in
//!   `tests/tests/analytics_streaming.rs` asserts this), so per-shard
//!   accumulators can be folded in any grouping at the
//!   [`ShardedSession`](crate::ShardedSession) barrier.
//! * `finalize` of a streamed/merged accumulator is **equal** to the
//!   batch function over the materialized event list — the batch
//!   functions in [`analytics`](crate::analytics) and
//!   [`events`](crate::events) are thin wrappers over these
//!   accumulators, so each paper metric has exactly one implementation.
//!
//! [`AnalyticsPipeline`] multiplexes one event stream into every
//! registered paper-metric accumulator;
//! [`InferenceSession::drain_closed_into`](crate::InferenceSession::drain_closed_into)
//! and [`InferenceSession::finish_with`](crate::InferenceSession::finish_with)
//! feed it mid-stream without ever materializing the full event `Vec`.

use std::collections::BTreeMap;
use std::sync::Arc;

use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::DataSource;

use crate::analytics::{
    CountryAccumulator, DailySeriesAccumulator, DistanceAccumulator, DurationAccumulator,
    PrefixSetAccumulator, ProviderPrefixAccumulator, ProvidersPerEventAccumulator, TypeAccumulator,
    UserPrefixAccumulator, VisibilityAccumulator,
};
use crate::events::{BlackholeEvent, PeriodAccumulator};
use crate::refdata::ReferenceData;
use crate::session::{DatasetVisibility, InferenceResult};

/// A mergeable, one-pass fold over a stream of blackholing events.
///
/// See the [module docs](self) for the order-insensitivity /
/// merge-associativity / batch-equality contract.
pub trait EventAccumulator {
    /// What `finalize` produces (the batch function's return type).
    type Output;

    /// Fold one event into the accumulator.
    fn observe(&mut self, event: &BlackholeEvent);

    /// Fold one owned event in; lets collectors keep the allocation
    /// instead of cloning. Defaults to `observe(&event)`.
    fn observe_owned(&mut self, event: BlackholeEvent) {
        self.observe(&event);
    }

    /// Fold in a per-dataset visibility snapshot (Table 3's input, which
    /// the session maintains alongside the events). Most metrics derive
    /// from events alone; the default is a no-op.
    fn observe_visibility(&mut self, _per_dataset: &BTreeMap<DataSource, DatasetVisibility>) {}

    /// Fold a sibling accumulator (fed a disjoint part of the stream)
    /// into this one. Associative and commutative.
    fn merge(&mut self, other: Self)
    where
        Self: Sized;

    /// Produce the metric.
    fn finalize(self) -> Self::Output
    where
        Self: Sized;
}

/// The identity accumulator: collects the events themselves.
///
/// This is what makes the event list itself "just another metric": a
/// plain [`InferenceSession::finish`](crate::InferenceSession::finish)
/// and the sharded runner both stream into an `EventCollector` and
/// restore the canonical `(start, prefix)` order at `finalize`.
#[derive(Debug, Clone, Default)]
pub struct EventCollector {
    events: Vec<BlackholeEvent>,
}

impl EventCollector {
    /// Events collected so far (observation order).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// No events collected yet?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventAccumulator for EventCollector {
    type Output = Vec<BlackholeEvent>;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.events.push(event.clone());
    }

    fn observe_owned(&mut self, event: BlackholeEvent) {
        self.events.push(event);
    }

    fn merge(&mut self, other: Self) {
        self.events.extend(other.events);
    }

    /// The collected events in canonical `(start, prefix)` order — the
    /// exact order a single-threaded batch run produces.
    fn finalize(mut self) -> Vec<BlackholeEvent> {
        self.events.sort_by_key(|e| (e.start, e.prefix));
        self.events
    }
}

/// The time parameters the figure accumulators need: the analysis
/// window (Fig. 4 daily buckets), the "now" used to measure still-open
/// durations (Fig. 8), and the §9 grouping timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyticsConfig {
    /// Start of the analysis window (inclusive).
    pub window_start: SimTime,
    /// End of the analysis window (exclusive).
    pub window_end: SimTime,
    /// Reference time for open-event durations.
    pub now: SimTime,
    /// The event-grouping timeout (the paper uses 5 minutes).
    pub grouping_timeout: SimDuration,
}

impl AnalyticsConfig {
    /// A window `[start, end)` with `now = end` and the paper's 5-minute
    /// grouping timeout.
    pub fn window(window_start: SimTime, window_end: SimTime) -> Self {
        AnalyticsConfig {
            window_start,
            window_end,
            now: window_end,
            grouping_timeout: SimDuration::mins(5),
        }
    }
}

/// Everything the pipeline computes: one field per paper table/figure,
/// each exactly equal to the corresponding batch function's output.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsReport {
    /// Table 3 rows (per-dataset visibility).
    pub table3: Vec<crate::analytics::VisibilityRow>,
    /// Table 4 rows (visibility by provider network type).
    pub table4: Vec<crate::analytics::TypeRow>,
    /// Fig. 4 daily longitudinal series.
    pub daily: Vec<crate::analytics::DailyPoint>,
    /// Fig. 5(a) per-provider blackholed-prefix counts.
    pub prefixes_per_provider: Vec<(crate::events::ProviderId, bh_topology::NetworkType, usize)>,
    /// Fig. 5(b) per-user blackholed-prefix counts.
    pub prefixes_per_user: Vec<(bh_bgp_types::asn::Asn, bh_topology::NetworkType, usize)>,
    /// Fig. 6 provider counts per country.
    pub provider_countries: BTreeMap<&'static str, usize>,
    /// Fig. 6 user counts per country.
    pub user_countries: BTreeMap<&'static str, usize>,
    /// Fig. 7(b) histogram of #providers per event.
    pub providers_per_event: BTreeMap<usize, usize>,
    /// Fig. 7(c) detection-distance histogram.
    pub distance_histogram: BTreeMap<crate::events::DetectionDistance, usize>,
    /// Fig. 8(a) event durations, ascending.
    pub durations: Vec<SimDuration>,
    /// Fig. 8 grouped periods (§9 grouping at the configured timeout).
    pub periods: Vec<crate::events::BlackholePeriod>,
    /// Distinct blackholed prefixes (Fig. 7(a) / §8 input census).
    pub blackholed_prefixes: std::collections::BTreeSet<bh_bgp_types::prefix::Ipv4Prefix>,
}

/// Multiplexes one event stream into every paper-metric accumulator.
///
/// Feed it via [`EventAccumulator::observe`] (it is itself an
/// accumulator), via
/// [`InferenceSession::drain_closed_into`](crate::InferenceSession::drain_closed_into)
/// mid-stream, or per shard through
/// [`SessionBuilder::build_sharded_with`](crate::SessionBuilder::build_sharded_with);
/// per-shard pipelines merge deterministically at the barrier.
#[derive(Debug, Clone)]
pub struct AnalyticsPipeline {
    visibility: VisibilityAccumulator,
    types: TypeAccumulator,
    daily: DailySeriesAccumulator,
    per_provider: ProviderPrefixAccumulator,
    per_user: UserPrefixAccumulator,
    geography: CountryAccumulator,
    providers_per_event: ProvidersPerEventAccumulator,
    distances: DistanceAccumulator,
    durations: DurationAccumulator,
    periods: PeriodAccumulator,
    prefixes: PrefixSetAccumulator,
}

impl AnalyticsPipeline {
    /// Register every paper-metric accumulator over the given reference
    /// data and time parameters.
    pub fn new(refdata: Arc<ReferenceData>, config: AnalyticsConfig) -> Self {
        AnalyticsPipeline {
            visibility: VisibilityAccumulator::new(refdata.clone()),
            types: TypeAccumulator::new(refdata.clone()),
            daily: DailySeriesAccumulator::new(config.window_start, config.window_end),
            per_provider: ProviderPrefixAccumulator::new(refdata.clone()),
            per_user: UserPrefixAccumulator::new(refdata.clone()),
            geography: CountryAccumulator::new(refdata),
            providers_per_event: ProvidersPerEventAccumulator::default(),
            distances: DistanceAccumulator::default(),
            durations: DurationAccumulator::new(config.now),
            periods: PeriodAccumulator::new(config.grouping_timeout),
            prefixes: PrefixSetAccumulator::default(),
        }
    }

    /// Fold a fully materialized batch result in — the bridge for
    /// callers that already ran batch inference.
    pub fn observe_result(&mut self, result: &InferenceResult) {
        for event in &result.events {
            self.observe(event);
        }
        self.observe_visibility(&result.per_dataset);
    }

    /// A point-in-time [`AnalyticsReport`] over everything observed so
    /// far, without consuming the pipeline — the incremental snapshot a
    /// live service publishes between checkpoints. Accumulators are
    /// order-insensitive, so a snapshot over a prefix of the stream is
    /// exactly the report a batch run over that prefix would produce.
    pub fn snapshot(&self) -> AnalyticsReport {
        self.clone().finalize()
    }
}

impl EventAccumulator for AnalyticsPipeline {
    type Output = AnalyticsReport;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.visibility.observe(event);
        self.types.observe(event);
        self.daily.observe(event);
        self.per_provider.observe(event);
        self.per_user.observe(event);
        self.geography.observe(event);
        self.providers_per_event.observe(event);
        self.distances.observe(event);
        self.durations.observe(event);
        self.periods.observe(event);
        self.prefixes.observe(event);
    }

    fn observe_visibility(&mut self, per_dataset: &BTreeMap<DataSource, DatasetVisibility>) {
        self.visibility.observe_visibility(per_dataset);
    }

    fn merge(&mut self, other: Self) {
        self.visibility.merge(other.visibility);
        self.types.merge(other.types);
        self.daily.merge(other.daily);
        self.per_provider.merge(other.per_provider);
        self.per_user.merge(other.per_user);
        self.geography.merge(other.geography);
        self.providers_per_event.merge(other.providers_per_event);
        self.distances.merge(other.distances);
        self.durations.merge(other.durations);
        self.periods.merge(other.periods);
        self.prefixes.merge(other.prefixes);
    }

    fn finalize(self) -> AnalyticsReport {
        let (provider_countries, user_countries) = self.geography.finalize();
        AnalyticsReport {
            table3: self.visibility.finalize(),
            table4: self.types.finalize(),
            daily: self.daily.finalize(),
            prefixes_per_provider: self.per_provider.finalize(),
            prefixes_per_user: self.per_user.finalize(),
            provider_countries,
            user_countries,
            providers_per_event: self.providers_per_event.finalize(),
            distance_histogram: self.distances.finalize(),
            durations: self.durations.finalize(),
            periods: self.periods.finalize(),
            blackholed_prefixes: self.prefixes.finalize(),
        }
    }
}
