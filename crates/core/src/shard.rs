//! The sharded parallel runner: hash-partition the element stream by
//! prefix across worker threads, each owning an
//! [`InferenceSession`](crate::InferenceSession), and merge
//! deterministically.
//!
//! Correctness rests on two facts about the §4.2 method:
//!
//! 1. All mutable inference state is keyed by prefix (the per-(prefix,
//!    peer) machines, the open-event table), so routing *every element
//!    of one prefix to the same shard* preserves the exact per-prefix
//!    arrival order — the only order the state machines observe.
//! 2. The cross-prefix outputs (census, stats, per-dataset visibility)
//!    are commutative accumulators, and the event list has a canonical
//!    order (stable sort by `(start, prefix)`), so shard merging is
//!    deterministic and bit-identical to a single-threaded run — a
//!    property test in `tests/` asserts exactly that.
//!
//! Elements cross thread boundaries in batches to amortize channel
//! overhead; the partition hash is a fixed multiplicative hash of the
//! prefix bits (never `RandomState`), so shard assignment is stable
//! across runs and machines.

use std::sync::mpsc;
use std::thread::{self, JoinHandle};

use bh_bgp_types::prefix::Ipv4Prefix;
use bh_routing::{BgpElem, ElemSource};

use crate::session::{InferenceResult, SessionBuilder};

/// Elements buffered per shard before a batch crosses the channel.
const BATCH: usize = 512;

enum ShardMsg {
    /// Live stream elements, in per-prefix arrival order.
    Elems(Vec<BgpElem>),
    /// RIB-dump entries (start time zero).
    Rib(Vec<BgpElem>),
}

/// A parallel inference session over `N` prefix-partitioned workers.
///
/// Built via [`SessionBuilder::build_sharded`]; exposes the same
/// one-pass surface as [`InferenceSession`](crate::InferenceSession)
/// (`push` / `push_rib` / `ingest` / `finish`). Mid-stream draining and
/// checkpointing remain single-session features — the sharded runner
/// targets offline archive scans where only the final result matters.
pub struct ShardedSession {
    senders: Vec<mpsc::Sender<ShardMsg>>,
    workers: Vec<JoinHandle<InferenceResult>>,
    buffers: Vec<Vec<BgpElem>>,
    pushed: u64,
}

impl ShardedSession {
    /// Spawn `shards` workers (clamped to at least 1), each owning a
    /// session built from `builder`.
    pub(crate) fn spawn(builder: SessionBuilder, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            let worker_builder = builder.clone();
            workers.push(thread::spawn(move || {
                let mut session = worker_builder.build();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ShardMsg::Elems(batch) => {
                            for elem in &batch {
                                session.push(elem);
                            }
                        }
                        ShardMsg::Rib(batch) => {
                            for elem in &batch {
                                session.push_rib(elem);
                            }
                        }
                    }
                }
                session.finish()
            }));
            senders.push(tx);
        }
        ShardedSession { senders, workers, buffers: vec![Vec::new(); shards], pushed: 0 }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Elements pushed so far (stream + RIB).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Deterministic shard assignment: a fixed multiplicative hash of
    /// the prefix bits and length.
    fn shard_of(&self, prefix: &Ipv4Prefix) -> usize {
        let key = ((prefix.network_bits() as u64) << 8) | prefix.length() as u64;
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed >> 32) % self.senders.len() as u64) as usize
    }

    /// Route one element to its prefix's shard.
    pub fn push(&mut self, elem: &BgpElem) {
        let shard = self.shard_of(&elem.prefix);
        self.buffers[shard].push(elem.clone());
        self.pushed += 1;
        if self.buffers[shard].len() >= BATCH {
            let batch = std::mem::take(&mut self.buffers[shard]);
            let _ = self.senders[shard].send(ShardMsg::Elems(batch));
        }
    }

    /// Initialize from a RIB dump (start time zero), sharded like the
    /// live stream. Call before pushing updates, mirroring the paper's
    /// "Initialization Based on BGP Table Dump".
    pub fn initialize_from_rib(&mut self, state: &[BgpElem]) {
        // Flush live buffers first so RIB entries cannot overtake
        // elements already pushed to the same shard.
        self.flush();
        let mut batches: Vec<Vec<BgpElem>> = vec![Vec::new(); self.senders.len()];
        for elem in state {
            batches[self.shard_of(&elem.prefix)].push(elem.clone());
        }
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.pushed += batch.len() as u64;
                let _ = self.senders[shard].send(ShardMsg::Rib(batch));
            }
        }
    }

    /// Drain every element of a source through the shards; returns how
    /// many were processed.
    pub fn ingest<S: ElemSource + ?Sized>(&mut self, source: &mut S) -> u64 {
        let mut n = 0;
        while let Some(elem) = source.next_elem() {
            self.push(elem);
            n += 1;
        }
        n
    }

    fn flush(&mut self) {
        for (shard, buffer) in self.buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let _ = self.senders[shard].send(ShardMsg::Elems(std::mem::take(buffer)));
            }
        }
    }

    /// Flush, close the channels, join the workers, and merge their
    /// results into one — bit-identical to a single-threaded run over
    /// the same stream.
    pub fn finish(mut self) -> InferenceResult {
        self.flush();
        drop(std::mem::take(&mut self.senders)); // close channels: workers finish
        let mut merged = InferenceResult::empty();
        for worker in self.workers.drain(..) {
            let result = worker.join().expect("shard worker panicked");
            merged.merge(result);
        }
        // Equal (start, prefix) keys can only collide within one shard
        // (a prefix never splits), and each worker already emits them in
        // single-threaded order — so the stable sort reproduces the
        // canonical order exactly.
        merged.sort_events();
        merged
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::community::{Community, CommunitySet};
    use bh_bgp_types::time::SimTime;
    use bh_irr::BlackholeDictionary;
    use bh_routing::{deploy, CollectorConfig, DataSource, ElemType};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;
    use crate::refdata::ReferenceData;

    fn builder() -> (SessionBuilder, Community) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let mut dict = BlackholeDictionary::default();
        let community = Community::from_parts(777, 666);
        dict.insert_validated(Asn::new(64_777), community);
        (SessionBuilder::new(Arc::new(dict), refdata), community)
    }

    fn announce(prefix: &str, time: u64, communities: Vec<Community>, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: prefix.parse().unwrap(),
            as_path: "100 64777 64999".parse().unwrap(),
            communities: CommunitySet::from_classic(communities),
            next_hop: None,
        }
    }

    fn withdraw(prefix: &str, time: u64, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Withdraw,
            prefix: prefix.parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    /// Synthetic multi-prefix stream with on/off pulses and stragglers.
    fn stream(community: Community) -> Vec<BgpElem> {
        let mut elems = Vec::new();
        for k in 0..40u64 {
            let prefix = format!("9.9.{}.{}/32", k % 7, k % 23);
            elems.push(announce(&prefix, 100 + k, vec![community], 100 + (k % 3) as u32));
            if k % 2 == 0 {
                elems.push(withdraw(&prefix, 200 + k, 100 + (k % 3) as u32));
            }
        }
        elems.sort_by_key(|e| e.time);
        elems
    }

    #[test]
    fn sharded_matches_single_threaded_exactly() {
        let (b, community) = builder();
        let elems = stream(community);

        let mut single = b.clone().build();
        for e in &elems {
            single.push(e);
        }
        let expected = single.finish();

        for shards in [1, 2, 4, 7] {
            let mut sharded = b.clone().build_sharded(shards);
            assert_eq!(sharded.shard_count(), shards);
            for e in &elems {
                sharded.push(e);
            }
            assert_eq!(sharded.pushed(), elems.len() as u64);
            assert_eq!(sharded.finish(), expected, "{shards} shards diverged");
        }
    }

    #[test]
    fn sharded_rib_initialization_matches_single_threaded() {
        let (b, community) = builder();
        let rib: Vec<BgpElem> = (0..9u64)
            .map(|k| announce(&format!("9.9.9.{k}/32"), 5_000, vec![community], 7))
            .collect();
        let updates: Vec<BgpElem> =
            (0..9u64).map(|k| withdraw(&format!("9.9.9.{k}/32"), 6_000 + k, 7)).collect();

        let mut single = b.clone().build();
        single.initialize_from_rib(&rib);
        for e in &updates {
            single.push(e);
        }
        let expected = single.finish();
        assert!(expected.events.iter().all(|e| e.start == SimTime::ZERO));

        let mut sharded = b.build_sharded(4);
        sharded.initialize_from_rib(&rib);
        for e in &updates {
            sharded.push(e);
        }
        assert_eq!(sharded.finish(), expected);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (b, community) = builder();
        let mut sharded = b.build_sharded(0);
        assert_eq!(sharded.shard_count(), 1);
        sharded.push(&announce("9.9.9.9/32", 10, vec![community], 1));
        assert_eq!(sharded.finish().events.len(), 1);
    }
}
