//! The sharded parallel runner: hash-partition the element stream by
//! prefix across worker threads, each owning an
//! [`InferenceSession`](crate::InferenceSession), and merge
//! deterministically.
//!
//! Correctness rests on two facts about the §4.2 method:
//!
//! 1. All mutable inference state is keyed by prefix (the per-(prefix,
//!    peer) machines, the open-event table), so routing *every element
//!    of one prefix to the same shard* preserves the exact per-prefix
//!    arrival order — the only order the state machines observe.
//! 2. The cross-prefix outputs (census, stats, per-dataset visibility,
//!    and every [`EventAccumulator`]) are commutative accumulators, and
//!    the event list has a canonical order (stable sort by `(start,
//!    prefix)`), so shard merging is deterministic and bit-identical to
//!    a single-threaded run — property tests in `tests/` assert exactly
//!    that.
//!
//! Each worker streams its closed events into its own accumulator as it
//! goes (a clone of the prototype handed to
//! [`SessionBuilder::build_sharded_with`]); the per-shard accumulators
//! are folded together at the [`ShardedSession::finish_parts`] barrier
//! in shard-index order. The default accumulator is the
//! [`EventCollector`], which reproduces the classic
//! `finish() -> InferenceResult` shape; an
//! [`AnalyticsPipeline`](crate::AnalyticsPipeline) instead computes
//! every paper figure inline, with no per-shard event `Vec` at all.
//!
//! Elements cross thread boundaries in batches to amortize channel
//! overhead; the partition hash is a fixed multiplicative hash of the
//! prefix bits (never `RandomState`), so shard assignment is stable
//! across runs and machines.
//!
//! The sharded runner composes with multi-collector ingestion: feeding
//! it a [`MergedSource`](bh_routing::MergedSource) or a
//! [`CollectorFleet`](bh_routing::CollectorFleet) stream via
//! [`ShardedSession::ingest`] pipelines N archive readers into M
//! inference workers with bounded memory at every stage.

use std::sync::mpsc;
use std::thread::{self, JoinHandle};

use bh_bgp_types::prefix::Ipv4Prefix;
use bh_routing::{BgpElem, ElemSource};

use crate::accumulate::{EventAccumulator, EventCollector};
use crate::session::{InferenceResult, SessionBuilder, StreamSummary};

/// Elements buffered per shard before a batch crosses the channel.
const BATCH: usize = 512;

enum ShardMsg {
    /// Live stream elements, in per-prefix arrival order.
    Elems(Vec<BgpElem>),
    /// RIB-dump entries (start time zero).
    Rib(Vec<BgpElem>),
}

/// A parallel inference session over `N` prefix-partitioned workers,
/// each streaming its closed events through its own accumulator.
///
/// Built via [`SessionBuilder::build_sharded`] (events collected, the
/// classic [`finish`](ShardedSession::finish) shape) or
/// [`SessionBuilder::build_sharded_with`] (any
/// [`EventAccumulator`], e.g. an
/// [`AnalyticsPipeline`](crate::AnalyticsPipeline) computing every
/// figure inline). Exposes the same one-pass surface as
/// [`InferenceSession`](crate::InferenceSession) (`push` / `push_rib` /
/// `ingest`). Mid-stream draining and checkpointing remain
/// single-session features — the sharded runner targets offline archive
/// scans where only the final result matters.
pub struct ShardedSession<A: EventAccumulator = EventCollector> {
    senders: Vec<mpsc::Sender<ShardMsg>>,
    workers: Vec<JoinHandle<(StreamSummary, A)>>,
    buffers: Vec<Vec<BgpElem>>,
    pushed: u64,
}

impl<A> ShardedSession<A>
where
    A: EventAccumulator + Clone + Send + 'static,
{
    /// Spawn `shards` workers (clamped to at least 1), each owning a
    /// session built from `builder` and a clone of `accumulator`.
    pub(crate) fn spawn(builder: SessionBuilder, shards: usize, accumulator: A) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            let worker_builder = builder.clone();
            let mut acc = accumulator.clone();
            workers.push(thread::spawn(move || {
                let mut session = worker_builder.build();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ShardMsg::Elems(batch) => {
                            for elem in &batch {
                                session.push(elem);
                            }
                        }
                        ShardMsg::Rib(batch) => {
                            for elem in &batch {
                                session.push_rib(elem);
                            }
                        }
                    }
                    // Stream closed events into the accumulator batch by
                    // batch: the worker never holds an event Vec.
                    session.drain_closed_into(&mut acc);
                }
                let summary = session.finish_with(&mut acc);
                (summary, acc)
            }));
            senders.push(tx);
        }
        ShardedSession { senders, workers, buffers: vec![Vec::new(); shards], pushed: 0 }
    }
}

impl<A: EventAccumulator> ShardedSession<A> {
    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Elements pushed so far (stream + RIB).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Deterministic shard assignment: a fixed multiplicative hash of
    /// the prefix bits and length.
    fn shard_of(&self, prefix: &Ipv4Prefix) -> usize {
        let key = ((prefix.network_bits() as u64) << 8) | prefix.length() as u64;
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed >> 32) % self.senders.len() as u64) as usize
    }

    /// Route one element to its prefix's shard.
    pub fn push(&mut self, elem: &BgpElem) {
        let shard = self.shard_of(&elem.prefix);
        self.buffers[shard].push(elem.clone());
        self.pushed += 1;
        if self.buffers[shard].len() >= BATCH {
            let batch = std::mem::take(&mut self.buffers[shard]);
            let _ = self.senders[shard].send(ShardMsg::Elems(batch));
        }
    }

    /// Initialize from a RIB dump (start time zero), sharded like the
    /// live stream. Call before pushing updates, mirroring the paper's
    /// "Initialization Based on BGP Table Dump".
    pub fn initialize_from_rib(&mut self, state: &[BgpElem]) {
        // Flush live buffers first so RIB entries cannot overtake
        // elements already pushed to the same shard.
        self.flush();
        let mut batches: Vec<Vec<BgpElem>> = vec![Vec::new(); self.senders.len()];
        for elem in state {
            batches[self.shard_of(&elem.prefix)].push(elem.clone());
        }
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.pushed += batch.len() as u64;
                let _ = self.senders[shard].send(ShardMsg::Rib(batch));
            }
        }
    }

    /// Drain every element of a source through the shards; returns how
    /// many were processed.
    pub fn ingest<S: ElemSource + ?Sized>(&mut self, source: &mut S) -> u64 {
        let mut n = 0;
        while let Some(elem) = source.next_elem() {
            self.push(elem);
            n += 1;
        }
        n
    }

    fn flush(&mut self) {
        for (shard, buffer) in self.buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                let _ = self.senders[shard].send(ShardMsg::Elems(std::mem::take(buffer)));
            }
        }
    }

    /// Flush, close the channels, join the workers, and fold their
    /// outputs: summaries merge commutatively, per-shard accumulators
    /// merge in shard-index order (deterministic — and order-free
    /// anyway, since every [`EventAccumulator`] merge is commutative).
    pub fn finish_parts(mut self) -> (StreamSummary, A) {
        self.flush();
        drop(std::mem::take(&mut self.senders)); // close channels: workers finish
        let mut summary = StreamSummary::empty();
        let mut merged: Option<A> = None;
        for worker in self.workers.drain(..) {
            let (worker_summary, acc) = worker.join().expect("shard worker panicked");
            summary.merge(worker_summary);
            match merged.as_mut() {
                None => merged = Some(acc),
                Some(m) => m.merge(acc),
            }
        }
        (summary, merged.expect("at least one shard"))
    }
}

impl ShardedSession<EventCollector> {
    /// Finish into a full [`InferenceResult`] — bit-identical to a
    /// single-threaded run over the same stream. Equal `(start, prefix)`
    /// keys can only collide within one shard (a prefix never splits),
    /// and each worker observes them in single-threaded closed order, so
    /// the collector's stable sort reproduces the canonical order
    /// exactly.
    pub fn finish(self) -> InferenceResult {
        let (summary, collector) = self.finish_parts();
        InferenceResult {
            events: collector.finalize(),
            census: summary.census,
            stats: summary.stats,
            per_dataset: summary.per_dataset,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::community::{Community, CommunitySet};
    use bh_bgp_types::time::{SimDuration, SimTime};
    use bh_irr::BlackholeDictionary;
    use bh_routing::{deploy, CollectorConfig, DataSource, ElemType};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;
    use crate::accumulate::{AnalyticsConfig, AnalyticsPipeline};
    use crate::refdata::ReferenceData;

    fn builder() -> (SessionBuilder, Community, Arc<ReferenceData>) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let mut dict = BlackholeDictionary::default();
        let community = Community::from_parts(777, 666);
        dict.insert_validated(Asn::new(64_777), community);
        (SessionBuilder::new(Arc::new(dict), refdata.clone()), community, refdata)
    }

    fn announce(prefix: &str, time: u64, communities: Vec<Community>, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: prefix.parse().unwrap(),
            as_path: "100 64777 64999".parse().unwrap(),
            communities: CommunitySet::from_classic(communities),
            next_hop: None,
        }
    }

    fn withdraw(prefix: &str, time: u64, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Withdraw,
            prefix: prefix.parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    /// Synthetic multi-prefix stream with on/off pulses and stragglers.
    fn stream(community: Community) -> Vec<BgpElem> {
        let mut elems = Vec::new();
        for k in 0..40u64 {
            let prefix = format!("9.9.{}.{}/32", k % 7, k % 23);
            elems.push(announce(&prefix, 100 + k, vec![community], 100 + (k % 3) as u32));
            if k % 2 == 0 {
                elems.push(withdraw(&prefix, 200 + k, 100 + (k % 3) as u32));
            }
        }
        elems.sort_by_key(|e| e.time);
        elems
    }

    #[test]
    fn sharded_matches_single_threaded_exactly() {
        let (b, community, _) = builder();
        let elems = stream(community);

        let mut single = b.clone().build();
        for e in &elems {
            single.push(e);
        }
        let expected = single.finish();

        for shards in [1, 2, 4, 7] {
            let mut sharded = b.clone().build_sharded(shards);
            assert_eq!(sharded.shard_count(), shards);
            for e in &elems {
                sharded.push(e);
            }
            assert_eq!(sharded.pushed(), elems.len() as u64);
            assert_eq!(sharded.finish(), expected, "{shards} shards diverged");
        }
    }

    #[test]
    fn sharded_rib_initialization_matches_single_threaded() {
        let (b, community, _) = builder();
        let rib: Vec<BgpElem> = (0..9u64)
            .map(|k| announce(&format!("9.9.9.{k}/32"), 5_000, vec![community], 7))
            .collect();
        let updates: Vec<BgpElem> =
            (0..9u64).map(|k| withdraw(&format!("9.9.9.{k}/32"), 6_000 + k, 7)).collect();

        let mut single = b.clone().build();
        single.initialize_from_rib(&rib);
        for e in &updates {
            single.push(e);
        }
        let expected = single.finish();
        assert!(expected.events.iter().all(|e| e.start == SimTime::ZERO));

        let mut sharded = b.build_sharded(4);
        sharded.initialize_from_rib(&rib);
        for e in &updates {
            sharded.push(e);
        }
        assert_eq!(sharded.finish(), expected);
    }

    #[test]
    fn sharded_ingest_of_merged_collector_streams_matches_single() {
        use bh_routing::{MergedSource, SliceSource};

        let (b, community, _) = builder();
        // Split the synthetic stream across three "collectors" (keeping
        // per-collector time order) and re-merge it at ingest time.
        let elems = stream(community);
        let mut streams: Vec<Vec<BgpElem>> = vec![Vec::new(); 3];
        for (k, mut e) in elems.into_iter().enumerate() {
            e.collector = (k % 3) as u16;
            streams[k % 3].push(e);
        }

        let mut single = b.clone().build();
        let sources: Vec<SliceSource<'_>> = streams.iter().map(SliceSource::from).collect();
        single.ingest(&mut MergedSource::new(sources));
        let expected = single.finish();

        let mut sharded = b.build_sharded(4);
        let sources: Vec<SliceSource<'_>> = streams.iter().map(SliceSource::from).collect();
        sharded.ingest(&mut MergedSource::new(sources));
        assert_eq!(sharded.finish(), expected);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (b, community, _) = builder();
        let mut sharded = b.build_sharded(0);
        assert_eq!(sharded.shard_count(), 1);
        sharded.push(&announce("9.9.9.9/32", 10, vec![community], 1));
        assert_eq!(sharded.finish().events.len(), 1);
    }

    #[test]
    fn sharded_inline_analytics_matches_batch_functions() {
        let (b, community, refdata) = builder();
        let elems = stream(community);
        let config = AnalyticsConfig::window(SimTime::ZERO, SimTime::ZERO + SimDuration::days(2));
        let pipeline = AnalyticsPipeline::new(refdata.clone(), config);

        // Batch reference: full result, then the batch wrappers.
        let mut single = b.clone().build();
        for e in &elems {
            single.push(e);
        }
        let batch = single.finish();
        let mut reference = AnalyticsPipeline::new(refdata, config);
        reference.observe_result(&batch);
        let expected = reference.finalize();

        let mut sharded = b.build_sharded_with(4, pipeline);
        for e in &elems {
            sharded.push(e);
        }
        let (summary, merged) = sharded.finish_parts();
        assert_eq!(summary.stats, batch.stats);
        assert_eq!(summary.census, batch.census);
        assert_eq!(summary.per_dataset, batch.per_dataset);
        assert_eq!(merged.finalize(), expected);
    }
}
