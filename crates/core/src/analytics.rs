//! Analytics over inferred events: the computations behind Tables 3–4 and
//! Figures 4–8.

use std::collections::{BTreeMap, BTreeSet};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::DataSource;
use bh_topology::NetworkType;

use crate::events::{BlackholeEvent, DetectionDistance, ProviderId};
use crate::refdata::ReferenceData;
use crate::session::InferenceResult;

/// One row of Table 3: per-platform blackholing visibility.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibilityRow {
    /// Platform label ("ALL" for the combined row).
    pub source: String,
    /// Blackholing providers observed.
    pub providers: usize,
    /// Providers observed *only* by this platform.
    pub unique_providers: usize,
    /// Blackholing users observed.
    pub users: usize,
    /// Users observed only by this platform.
    pub unique_users: usize,
    /// Blackholed prefixes observed.
    pub prefixes: usize,
    /// Prefixes observed only by this platform.
    pub unique_prefixes: usize,
    /// Fraction of observed providers feeding this platform directly.
    pub direct_feed_fraction: f64,
}

/// Compute Table 3 from the engine result: one row per platform plus the
/// ALL row.
pub fn table3(result: &InferenceResult, refdata: &ReferenceData) -> Vec<VisibilityRow> {
    let mut rows = Vec::new();
    let datasets: Vec<DataSource> = DataSource::ALL.to_vec();
    let provider_feeds = |source: Option<DataSource>, provider: &ProviderId| -> bool {
        let asn = match provider {
            ProviderId::As(asn) => *asn,
            ProviderId::Ixp(id) => match refdata.route_server_of(*id) {
                Some(asn) => asn,
                None => return false,
            },
        };
        match source {
            Some(s) => refdata.has_direct_feed(s, asn),
            None => refdata.has_any_direct_feed(asn),
        }
    };

    for &source in &datasets {
        let Some(vis) = result.per_dataset.get(&source) else {
            rows.push(VisibilityRow {
                source: source.label().to_string(),
                providers: 0,
                unique_providers: 0,
                users: 0,
                unique_users: 0,
                prefixes: 0,
                unique_prefixes: 0,
                direct_feed_fraction: 0.0,
            });
            continue;
        };
        let others_providers: BTreeSet<ProviderId> = result
            .per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.providers.iter().copied())
            .collect();
        let others_users: BTreeSet<Asn> = result
            .per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.users.iter().copied())
            .collect();
        let others_prefixes: BTreeSet<Ipv4Prefix> = result
            .per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.prefixes.iter().copied())
            .collect();
        let direct = vis.providers.iter().filter(|p| provider_feeds(Some(source), p)).count();
        rows.push(VisibilityRow {
            source: source.label().to_string(),
            providers: vis.providers.len(),
            unique_providers: vis.providers.difference(&others_providers).count(),
            users: vis.users.len(),
            unique_users: vis.users.difference(&others_users).count(),
            prefixes: vis.prefixes.len(),
            unique_prefixes: vis.prefixes.difference(&others_prefixes).count(),
            direct_feed_fraction: ratio(direct, vis.providers.len()),
        });
    }

    // ALL row.
    let mut all_providers = BTreeSet::new();
    let mut all_users = BTreeSet::new();
    let mut all_prefixes = BTreeSet::new();
    for vis in result.per_dataset.values() {
        all_providers.extend(vis.providers.iter().copied());
        all_users.extend(vis.users.iter().copied());
        all_prefixes.extend(vis.prefixes.iter().copied());
    }
    let direct = all_providers.iter().filter(|p| provider_feeds(None, p)).count();
    rows.push(VisibilityRow {
        source: "ALL".to_string(),
        providers: all_providers.len(),
        unique_providers: 0,
        users: all_users.len(),
        unique_users: 0,
        prefixes: all_prefixes.len(),
        unique_prefixes: 0,
        direct_feed_fraction: ratio(direct, all_providers.len()),
    });
    rows
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The network type of a provider (IXPs classify as IXP by construction).
pub fn provider_type(provider: &ProviderId, refdata: &ReferenceData) -> NetworkType {
    match provider {
        ProviderId::Ixp(_) => NetworkType::Ixp,
        ProviderId::As(asn) => refdata.network_type(*asn),
    }
}

/// One row of Table 4: visibility by provider network type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeRow {
    /// Network type.
    pub network_type: NetworkType,
    /// Providers of this type.
    pub providers: usize,
    /// Users blackholing via providers of this type.
    pub users: usize,
    /// Prefixes blackholed via providers of this type.
    pub prefixes: usize,
    /// Fraction of this type's providers with a direct feed.
    pub direct_feed_fraction: f64,
}

/// Compute Table 4.
pub fn table4(events: &[BlackholeEvent], refdata: &ReferenceData) -> Vec<TypeRow> {
    let mut providers: BTreeMap<NetworkType, BTreeSet<ProviderId>> = BTreeMap::new();
    let mut users: BTreeMap<NetworkType, BTreeSet<Asn>> = BTreeMap::new();
    let mut prefixes: BTreeMap<NetworkType, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    for event in events {
        for provider in &event.providers {
            let ty = provider_type(provider, refdata);
            providers.entry(ty).or_default().insert(*provider);
            users.entry(ty).or_default().extend(event.users.iter().copied());
            prefixes.entry(ty).or_default().insert(event.prefix);
        }
    }
    let mut rows = Vec::new();
    for ty in NetworkType::ALL {
        let provs = providers.get(&ty).cloned().unwrap_or_default();
        let direct = provs
            .iter()
            .filter(|p| {
                let asn = match p {
                    ProviderId::As(asn) => Some(*asn),
                    ProviderId::Ixp(id) => refdata.route_server_of(*id),
                };
                asn.is_some_and(|a| refdata.has_any_direct_feed(a))
            })
            .count();
        rows.push(TypeRow {
            network_type: ty,
            providers: provs.len(),
            users: users.get(&ty).map_or(0, BTreeSet::len),
            prefixes: prefixes.get(&ty).map_or(0, BTreeSet::len),
            direct_feed_fraction: ratio(direct, provs.len()),
        });
    }
    rows
}

/// One day of the Fig. 4 longitudinal series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailyPoint {
    /// Midnight of the day.
    pub day: SimTime,
    /// Distinct active blackholing providers.
    pub providers: usize,
    /// Distinct active blackholing users.
    pub users: usize,
    /// Distinct concurrently blackholed prefixes.
    pub prefixes: usize,
}

/// Compute the daily activity series over `[window_start, window_end)`.
pub fn daily_series(
    events: &[BlackholeEvent],
    window_start: SimTime,
    window_end: SimTime,
) -> Vec<DailyPoint> {
    let first_day = window_start.day_index();
    let last_day = window_end.day_index();
    let days = (last_day - first_day) as usize;
    let mut providers: Vec<BTreeSet<ProviderId>> = vec![BTreeSet::new(); days];
    let mut users: Vec<BTreeSet<Asn>> = vec![BTreeSet::new(); days];
    let mut prefixes: Vec<BTreeSet<Ipv4Prefix>> = vec![BTreeSet::new(); days];

    for event in events {
        let from = event.start.day_index().max(first_day);
        let to = event
            .end
            .map(|e| e.day_index())
            .unwrap_or(last_day.saturating_sub(1))
            .min(last_day.saturating_sub(1));
        for day in from..=to {
            if day < first_day {
                continue;
            }
            let idx = (day - first_day) as usize;
            if idx >= days {
                break;
            }
            providers[idx].extend(event.providers.iter().copied());
            users[idx].extend(event.users.iter().copied());
            prefixes[idx].insert(event.prefix);
        }
    }

    (0..days)
        .map(|idx| DailyPoint {
            day: SimTime::from_unix((first_day + idx as u64) * 86_400),
            providers: providers[idx].len(),
            users: users[idx].len(),
            prefixes: prefixes[idx].len(),
        })
        .collect()
}

/// Per-provider blackholed-prefix counts (Fig. 5(a) input).
pub fn prefixes_per_provider(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> Vec<(ProviderId, NetworkType, usize)> {
    let mut map: BTreeMap<ProviderId, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    for event in events {
        for provider in &event.providers {
            map.entry(*provider).or_default().insert(event.prefix);
        }
    }
    map.into_iter()
        .map(|(p, set)| {
            let ty = provider_type(&p, refdata);
            (p, ty, set.len())
        })
        .collect()
}

/// Per-user blackholed-prefix counts with user network type (Fig. 5(b)).
pub fn prefixes_per_user(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> Vec<(Asn, NetworkType, usize)> {
    let mut map: BTreeMap<Asn, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    for event in events {
        for user in &event.users {
            map.entry(*user).or_default().insert(event.prefix);
        }
    }
    map.into_iter().map(|(asn, set)| (asn, refdata.network_type(asn), set.len())).collect()
}

/// Per-country counts of providers and users (Fig. 6).
pub fn per_country(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> (BTreeMap<&'static str, usize>, BTreeMap<&'static str, usize>) {
    let mut providers: BTreeSet<Asn> = BTreeSet::new();
    let mut users: BTreeSet<Asn> = BTreeSet::new();
    for event in events {
        for provider in &event.providers {
            match provider {
                ProviderId::As(asn) => {
                    providers.insert(*asn);
                }
                ProviderId::Ixp(id) => {
                    if let Some(asn) = refdata.route_server_of(*id) {
                        providers.insert(asn);
                    }
                }
            }
        }
        users.extend(event.users.iter().copied());
    }
    let count = |set: &BTreeSet<Asn>| {
        let mut map: BTreeMap<&'static str, usize> = BTreeMap::new();
        for asn in set {
            *map.entry(refdata.country(*asn)).or_default() += 1;
        }
        map
    };
    (count(&providers), count(&users))
}

/// Histogram of #providers per event (Fig. 7(b)).
pub fn providers_per_event(events: &[BlackholeEvent]) -> BTreeMap<usize, usize> {
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for event in events {
        *hist.entry(event.providers.len()).or_default() += 1;
    }
    hist
}

/// Histogram of collector↔provider AS distances (Fig. 7(c)); the
/// `NoPath` bucket is the bundling share.
pub fn distance_histogram(events: &[BlackholeEvent]) -> BTreeMap<DetectionDistance, usize> {
    let mut hist: BTreeMap<DetectionDistance, usize> = BTreeMap::new();
    for event in events {
        for d in &event.distances {
            *hist.entry(*d).or_default() += 1;
        }
    }
    hist
}

/// Event durations (Fig. 8 inputs); open events are measured to `now`.
pub fn durations(events: &[BlackholeEvent], now: SimTime) -> Vec<SimDuration> {
    events.iter().map(|e| e.duration(now)).collect()
}

#[cfg(test)]
mod tests {
    use bh_routing::{deploy, CollectorConfig};
    use bh_topology::{IxpId, TopologyBuilder, TopologyConfig};

    use crate::session::DatasetVisibility;

    use super::*;

    fn refdata() -> ReferenceData {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        ReferenceData::build(&t, &d)
    }

    fn event(
        prefix: &str,
        providers: Vec<ProviderId>,
        users: Vec<u32>,
        start: u64,
        end: Option<u64>,
    ) -> BlackholeEvent {
        BlackholeEvent {
            prefix: prefix.parse().unwrap(),
            providers: providers.into_iter().collect(),
            users: users.into_iter().map(Asn::new).collect(),
            start: SimTime::from_unix(start),
            end: end.map(SimTime::from_unix),
            peer_count: 1,
            datasets: BTreeSet::from([DataSource::Ris]),
            distances: BTreeSet::from([DetectionDistance::Hops(1)]),
            bundled_detection: false,
        }
    }

    #[test]
    fn daily_series_counts_active_days() {
        let day = 86_400u64;
        let events = vec![
            // Active on days 0 and 1.
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![10], 10, Some(day + 10)),
            // Active on day 1 only.
            event(
                "2.2.2.2/32",
                vec![ProviderId::As(Asn::new(2))],
                vec![11],
                day + 5,
                Some(day + 500),
            ),
            // Open event: active from day 2 to the end of the window.
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(1))], vec![10], 2 * day + 5, None),
        ];
        let series = daily_series(&events, SimTime::ZERO, SimTime::from_unix(4 * day));
        assert_eq!(series.len(), 4);
        assert_eq!((series[0].providers, series[0].users, series[0].prefixes), (1, 1, 1));
        assert_eq!((series[1].providers, series[1].users, series[1].prefixes), (2, 2, 2));
        assert_eq!((series[2].providers, series[2].users, series[2].prefixes), (1, 1, 1));
        assert_eq!((series[3].providers, series[3].users, series[3].prefixes), (1, 1, 1));
    }

    #[test]
    fn providers_per_event_histogram() {
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1)),
            event(
                "2.2.2.2/32",
                vec![ProviderId::As(Asn::new(1)), ProviderId::As(Asn::new(2))],
                vec![],
                0,
                Some(1),
            ),
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(3))], vec![], 0, Some(1)),
        ];
        let hist = providers_per_event(&events);
        assert_eq!(hist.get(&1), Some(&2));
        assert_eq!(hist.get(&2), Some(&1));
    }

    #[test]
    fn table4_groups_by_provider_type() {
        let r = refdata();
        // Use a real IXP id from refdata's topology.
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::Ixp(IxpId(0))], vec![10, 11], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::Ixp(IxpId(0))], vec![10], 0, Some(1)),
        ];
        let rows = table4(&events, &r);
        let ixp_row = rows.iter().find(|row| row.network_type == NetworkType::Ixp).unwrap();
        assert_eq!(ixp_row.providers, 1);
        assert_eq!(ixp_row.users, 2);
        assert_eq!(ixp_row.prefixes, 2);
        let transit_row =
            rows.iter().find(|row| row.network_type == NetworkType::TransitAccess).unwrap();
        assert_eq!(transit_row.providers, 0);
    }

    #[test]
    fn table3_unique_counting() {
        let r = refdata();
        let mut per_dataset = BTreeMap::new();
        let p1 = ProviderId::As(Asn::new(1));
        let p2 = ProviderId::As(Asn::new(2));
        per_dataset.insert(
            DataSource::Ris,
            DatasetVisibility {
                providers: BTreeSet::from([p1, p2]),
                users: BTreeSet::from([Asn::new(10)]),
                prefixes: BTreeSet::from(["1.1.1.1/32".parse().unwrap()]),
            },
        );
        per_dataset.insert(
            DataSource::Cdn,
            DatasetVisibility {
                providers: BTreeSet::from([p1]),
                users: BTreeSet::from([Asn::new(10), Asn::new(11)]),
                prefixes: BTreeSet::from([
                    "1.1.1.1/32".parse().unwrap(),
                    "2.2.2.2/32".parse().unwrap(),
                ]),
            },
        );
        let result = InferenceResult {
            events: vec![],
            census: Default::default(),
            stats: Default::default(),
            per_dataset,
        };
        let rows = table3(&result, &r);
        let ris = rows.iter().find(|row| row.source == "RIS").unwrap();
        assert_eq!(ris.providers, 2);
        assert_eq!(ris.unique_providers, 1); // p2 only at RIS
        assert_eq!(ris.unique_users, 0);
        let cdn = rows.iter().find(|row| row.source == "CDN").unwrap();
        assert_eq!(cdn.unique_users, 1); // user 11 only at CDN
        assert_eq!(cdn.unique_prefixes, 1);
        let all = rows.iter().find(|row| row.source == "ALL").unwrap();
        assert_eq!(all.providers, 2);
        assert_eq!(all.users, 2);
        assert_eq!(all.prefixes, 2);
    }

    #[test]
    fn per_country_uses_refdata() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let r = ReferenceData::build(&t, &d);
        let some_as = t.ases().next().unwrap().asn;
        let events = vec![event(
            "1.1.1.1/32",
            vec![ProviderId::As(some_as)],
            vec![some_as.value()],
            0,
            Some(1),
        )];
        let (providers, users) = per_country(&events, &r);
        assert_eq!(providers.values().sum::<usize>(), 1);
        assert_eq!(users.values().sum::<usize>(), 1);
        assert!(providers.contains_key(r.country(some_as)));
    }

    #[test]
    fn prefix_count_helpers() {
        let r = refdata();
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![10], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![10], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![10], 5, Some(6)),
        ];
        let per_provider = prefixes_per_provider(&events, &r);
        assert_eq!(per_provider.len(), 1);
        assert_eq!(per_provider[0].2, 2); // distinct prefixes
        let per_user = prefixes_per_user(&events, &r);
        assert_eq!(per_user.len(), 1);
        assert_eq!(per_user[0].2, 2);
    }

    #[test]
    fn distance_histogram_counts_event_distances() {
        let mut e1 = event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1));
        e1.distances = BTreeSet::from([DetectionDistance::NoPath, DetectionDistance::Hops(1)]);
        let e2 = event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1));
        let hist = distance_histogram(&[e1, e2]);
        assert_eq!(hist.get(&DetectionDistance::NoPath), Some(&1));
        assert_eq!(hist.get(&DetectionDistance::Hops(1)), Some(&2));
    }
}
