//! Analytics over inferred events: the computations behind Tables 3–4 and
//! Figures 4–8.
//!
//! Each metric exists exactly once, as a mergeable
//! [`EventAccumulator`]; the batch
//! functions (`table3`, `table4`, `daily_series`, …) are thin wrappers
//! that fold a materialized event slice through the same accumulator.
//! Accumulators can instead be fed incrementally — from
//! [`InferenceSession::drain_closed_into`](crate::InferenceSession::drain_closed_into)
//! or per shard via
//! [`SessionBuilder::build_sharded_with`](crate::SessionBuilder::build_sharded_with)
//! — and produce identical output (see
//! `tests/tests/analytics_streaming.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::hash::FxHashSet;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_routing::DataSource;
use bh_topology::NetworkType;

use crate::accumulate::EventAccumulator;
use crate::events::{BlackholeEvent, DetectionDistance, ProviderId};
use crate::refdata::ReferenceData;
use crate::session::{DatasetVisibility, InferenceResult};

/// One row of Table 3: per-platform blackholing visibility.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibilityRow {
    /// Platform label ("ALL" for the combined row).
    pub source: String,
    /// Blackholing providers observed.
    pub providers: usize,
    /// Providers observed *only* by this platform.
    pub unique_providers: usize,
    /// Blackholing users observed.
    pub users: usize,
    /// Users observed only by this platform.
    pub unique_users: usize,
    /// Blackholed prefixes observed.
    pub prefixes: usize,
    /// Prefixes observed only by this platform.
    pub unique_prefixes: usize,
    /// Fraction of observed providers feeding this platform directly.
    pub direct_feed_fraction: f64,
}

/// The single implementation behind Table 3: rows from a per-dataset
/// visibility map (which the session maintains incrementally).
fn visibility_rows(
    per_dataset: &BTreeMap<DataSource, DatasetVisibility>,
    refdata: &ReferenceData,
) -> Vec<VisibilityRow> {
    let mut rows = Vec::new();
    let datasets: Vec<DataSource> = DataSource::ALL.to_vec();
    let provider_feeds = |source: Option<DataSource>, provider: &ProviderId| -> bool {
        let asn = match provider {
            ProviderId::As(asn) => *asn,
            ProviderId::Ixp(id) => match refdata.route_server_of(*id) {
                Some(asn) => asn,
                None => return false,
            },
        };
        match source {
            Some(s) => refdata.has_direct_feed(s, asn),
            None => refdata.has_any_direct_feed(asn),
        }
    };

    for &source in &datasets {
        let Some(vis) = per_dataset.get(&source) else {
            rows.push(VisibilityRow {
                source: source.label().to_string(),
                providers: 0,
                unique_providers: 0,
                users: 0,
                unique_users: 0,
                prefixes: 0,
                unique_prefixes: 0,
                direct_feed_fraction: 0.0,
            });
            continue;
        };
        let others_providers: FxHashSet<ProviderId> = per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.providers.iter().copied())
            .collect();
        let others_users: FxHashSet<Asn> = per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.users.iter().copied())
            .collect();
        let others_prefixes: FxHashSet<Ipv4Prefix> = per_dataset
            .iter()
            .filter(|(s, _)| **s != source)
            .flat_map(|(_, v)| v.prefixes.iter().copied())
            .collect();
        let direct = vis.providers.iter().filter(|p| provider_feeds(Some(source), p)).count();
        rows.push(VisibilityRow {
            source: source.label().to_string(),
            providers: vis.providers.len(),
            unique_providers: vis.providers.difference(&others_providers).count(),
            users: vis.users.len(),
            unique_users: vis.users.difference(&others_users).count(),
            prefixes: vis.prefixes.len(),
            unique_prefixes: vis.prefixes.difference(&others_prefixes).count(),
            direct_feed_fraction: ratio(direct, vis.providers.len()),
        });
    }

    // ALL row.
    let mut all_providers = BTreeSet::new();
    let mut all_users = BTreeSet::new();
    let mut all_prefixes = BTreeSet::new();
    for vis in per_dataset.values() {
        all_providers.extend(vis.providers.iter().copied());
        all_users.extend(vis.users.iter().copied());
        all_prefixes.extend(vis.prefixes.iter().copied());
    }
    let direct = all_providers.iter().filter(|p| provider_feeds(None, p)).count();
    rows.push(VisibilityRow {
        source: "ALL".to_string(),
        providers: all_providers.len(),
        unique_providers: 0,
        users: all_users.len(),
        unique_users: 0,
        prefixes: all_prefixes.len(),
        unique_prefixes: 0,
        direct_feed_fraction: ratio(direct, all_providers.len()),
    });
    rows
}

/// Compute Table 3 from the engine result: one row per platform plus the
/// ALL row. Thin wrapper over [`VisibilityAccumulator`].
pub fn table3(result: &InferenceResult, refdata: &ReferenceData) -> Vec<VisibilityRow> {
    visibility_rows(&result.per_dataset, refdata)
}

/// Table 3 as a mergeable accumulator.
///
/// The per-source breakdown comes from the session's per-dataset
/// visibility (which detection was seen on which platform's elements —
/// information the correlated events no longer carry), so the fold
/// happens in [`EventAccumulator::observe_visibility`]; `observe` is a
/// deliberate no-op.
#[derive(Debug, Clone)]
pub struct VisibilityAccumulator {
    refdata: Arc<ReferenceData>,
    per_dataset: BTreeMap<DataSource, DatasetVisibility>,
}

impl VisibilityAccumulator {
    /// An empty accumulator over the given reference data.
    pub fn new(refdata: Arc<ReferenceData>) -> Self {
        VisibilityAccumulator { refdata, per_dataset: BTreeMap::new() }
    }
}

impl EventAccumulator for VisibilityAccumulator {
    type Output = Vec<VisibilityRow>;

    fn observe(&mut self, _event: &BlackholeEvent) {}

    fn observe_visibility(&mut self, per_dataset: &BTreeMap<DataSource, DatasetVisibility>) {
        for (dataset, vis) in per_dataset {
            self.per_dataset.entry(*dataset).or_default().merge(vis);
        }
    }

    fn merge(&mut self, other: Self) {
        self.observe_visibility(&other.per_dataset);
    }

    fn finalize(self) -> Vec<VisibilityRow> {
        visibility_rows(&self.per_dataset, &self.refdata)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The network type of a provider (IXPs classify as IXP by construction).
pub fn provider_type(provider: &ProviderId, refdata: &ReferenceData) -> NetworkType {
    match provider {
        ProviderId::Ixp(_) => NetworkType::Ixp,
        ProviderId::As(asn) => refdata.network_type(*asn),
    }
}

/// One row of Table 4: visibility by provider network type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeRow {
    /// Network type.
    pub network_type: NetworkType,
    /// Providers of this type.
    pub providers: usize,
    /// Users blackholing via providers of this type.
    pub users: usize,
    /// Prefixes blackholed via providers of this type.
    pub prefixes: usize,
    /// Fraction of this type's providers with a direct feed.
    pub direct_feed_fraction: f64,
}

/// The per-type sets behind Table 4 (shared by the batch function and
/// the accumulator).
#[derive(Debug, Clone, Default)]
struct TypeSets {
    providers: BTreeMap<NetworkType, BTreeSet<ProviderId>>,
    users: BTreeMap<NetworkType, BTreeSet<Asn>>,
    prefixes: BTreeMap<NetworkType, BTreeSet<Ipv4Prefix>>,
}

impl TypeSets {
    fn observe(&mut self, event: &BlackholeEvent, refdata: &ReferenceData) {
        for provider in &event.providers {
            let ty = provider_type(provider, refdata);
            self.providers.entry(ty).or_default().insert(*provider);
            self.users.entry(ty).or_default().extend(event.users.iter().copied());
            self.prefixes.entry(ty).or_default().insert(event.prefix);
        }
    }

    fn merge(&mut self, other: TypeSets) {
        for (ty, set) in other.providers {
            self.providers.entry(ty).or_default().extend(set);
        }
        for (ty, set) in other.users {
            self.users.entry(ty).or_default().extend(set);
        }
        for (ty, set) in other.prefixes {
            self.prefixes.entry(ty).or_default().extend(set);
        }
    }

    fn rows(&self, refdata: &ReferenceData) -> Vec<TypeRow> {
        let mut rows = Vec::new();
        for ty in NetworkType::ALL {
            let provs = self.providers.get(&ty).cloned().unwrap_or_default();
            let direct = provs
                .iter()
                .filter(|p| {
                    let asn = match p {
                        ProviderId::As(asn) => Some(*asn),
                        ProviderId::Ixp(id) => refdata.route_server_of(*id),
                    };
                    asn.is_some_and(|a| refdata.has_any_direct_feed(a))
                })
                .count();
            rows.push(TypeRow {
                network_type: ty,
                providers: provs.len(),
                users: self.users.get(&ty).map_or(0, BTreeSet::len),
                prefixes: self.prefixes.get(&ty).map_or(0, BTreeSet::len),
                direct_feed_fraction: ratio(direct, provs.len()),
            });
        }
        rows
    }
}

/// Compute Table 4. Thin wrapper over [`TypeAccumulator`]'s fold.
pub fn table4(events: &[BlackholeEvent], refdata: &ReferenceData) -> Vec<TypeRow> {
    let mut sets = TypeSets::default();
    for event in events {
        sets.observe(event, refdata);
    }
    sets.rows(refdata)
}

/// Table 4 as a mergeable accumulator.
#[derive(Debug, Clone)]
pub struct TypeAccumulator {
    refdata: Arc<ReferenceData>,
    sets: TypeSets,
}

impl TypeAccumulator {
    /// An empty accumulator over the given reference data.
    pub fn new(refdata: Arc<ReferenceData>) -> Self {
        TypeAccumulator { refdata, sets: TypeSets::default() }
    }
}

impl EventAccumulator for TypeAccumulator {
    type Output = Vec<TypeRow>;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.sets.observe(event, &self.refdata);
    }

    fn merge(&mut self, other: Self) {
        self.sets.merge(other.sets);
    }

    fn finalize(self) -> Vec<TypeRow> {
        self.sets.rows(&self.refdata)
    }
}

/// One day of the Fig. 4 longitudinal series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailyPoint {
    /// Midnight of the day.
    pub day: SimTime,
    /// Distinct active blackholing providers.
    pub providers: usize,
    /// Distinct active blackholing users.
    pub users: usize,
    /// Distinct concurrently blackholed prefixes.
    pub prefixes: usize,
}

/// Compute the daily activity series over `[window_start, window_end)`.
/// Thin wrapper over [`DailySeriesAccumulator`].
pub fn daily_series(
    events: &[BlackholeEvent],
    window_start: SimTime,
    window_end: SimTime,
) -> Vec<DailyPoint> {
    let mut acc = DailySeriesAccumulator::new(window_start, window_end);
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

/// Fig. 4 as a mergeable accumulator: per-day distinct-entity sets over
/// a fixed window.
#[derive(Debug, Clone)]
pub struct DailySeriesAccumulator {
    first_day: u64,
    last_day: u64,
    providers: Vec<BTreeSet<ProviderId>>,
    users: Vec<BTreeSet<Asn>>,
    prefixes: Vec<BTreeSet<Ipv4Prefix>>,
}

impl DailySeriesAccumulator {
    /// An empty accumulator over `[window_start, window_end)`.
    pub fn new(window_start: SimTime, window_end: SimTime) -> Self {
        let first_day = window_start.day_index();
        let last_day = window_end.day_index();
        let days = (last_day - first_day) as usize;
        DailySeriesAccumulator {
            first_day,
            last_day,
            providers: vec![BTreeSet::new(); days],
            users: vec![BTreeSet::new(); days],
            prefixes: vec![BTreeSet::new(); days],
        }
    }
}

impl EventAccumulator for DailySeriesAccumulator {
    type Output = Vec<DailyPoint>;

    fn observe(&mut self, event: &BlackholeEvent) {
        let days = self.providers.len();
        let from = event.start.day_index().max(self.first_day);
        let to = event
            .end
            .map(|e| e.day_index())
            .unwrap_or(self.last_day.saturating_sub(1))
            .min(self.last_day.saturating_sub(1));
        for day in from..=to {
            if day < self.first_day {
                continue;
            }
            let idx = (day - self.first_day) as usize;
            if idx >= days {
                break;
            }
            self.providers[idx].extend(event.providers.iter().copied());
            self.users[idx].extend(event.users.iter().copied());
            self.prefixes[idx].insert(event.prefix);
        }
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(
            (self.first_day, self.last_day),
            (other.first_day, other.last_day),
            "daily-series accumulators must share one window"
        );
        for (mine, theirs) in self.providers.iter_mut().zip(other.providers) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.users.iter_mut().zip(other.users) {
            mine.extend(theirs);
        }
        for (mine, theirs) in self.prefixes.iter_mut().zip(other.prefixes) {
            mine.extend(theirs);
        }
    }

    fn finalize(self) -> Vec<DailyPoint> {
        (0..self.providers.len())
            .map(|idx| DailyPoint {
                day: SimTime::from_unix((self.first_day + idx as u64) * 86_400),
                providers: self.providers[idx].len(),
                users: self.users[idx].len(),
                prefixes: self.prefixes[idx].len(),
            })
            .collect()
    }
}

/// Per-provider blackholed-prefix counts (Fig. 5(a) input). Thin wrapper
/// over [`ProviderPrefixAccumulator`]'s fold.
pub fn prefixes_per_provider(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> Vec<(ProviderId, NetworkType, usize)> {
    let mut map: BTreeMap<ProviderId, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    for event in events {
        provider_prefix_observe(&mut map, event);
    }
    provider_prefix_rows(map, refdata)
}

fn provider_prefix_observe(
    map: &mut BTreeMap<ProviderId, BTreeSet<Ipv4Prefix>>,
    event: &BlackholeEvent,
) {
    for provider in &event.providers {
        map.entry(*provider).or_default().insert(event.prefix);
    }
}

fn provider_prefix_rows(
    map: BTreeMap<ProviderId, BTreeSet<Ipv4Prefix>>,
    refdata: &ReferenceData,
) -> Vec<(ProviderId, NetworkType, usize)> {
    map.into_iter()
        .map(|(p, set)| {
            let ty = provider_type(&p, refdata);
            (p, ty, set.len())
        })
        .collect()
}

/// Fig. 5(a) as a mergeable accumulator.
#[derive(Debug, Clone)]
pub struct ProviderPrefixAccumulator {
    refdata: Arc<ReferenceData>,
    map: BTreeMap<ProviderId, BTreeSet<Ipv4Prefix>>,
}

impl ProviderPrefixAccumulator {
    /// An empty accumulator over the given reference data.
    pub fn new(refdata: Arc<ReferenceData>) -> Self {
        ProviderPrefixAccumulator { refdata, map: BTreeMap::new() }
    }
}

impl EventAccumulator for ProviderPrefixAccumulator {
    type Output = Vec<(ProviderId, NetworkType, usize)>;

    fn observe(&mut self, event: &BlackholeEvent) {
        provider_prefix_observe(&mut self.map, event);
    }

    fn merge(&mut self, other: Self) {
        for (provider, set) in other.map {
            self.map.entry(provider).or_default().extend(set);
        }
    }

    fn finalize(self) -> Vec<(ProviderId, NetworkType, usize)> {
        provider_prefix_rows(self.map, &self.refdata)
    }
}

/// Per-user blackholed-prefix counts with user network type (Fig. 5(b)).
/// Thin wrapper over [`UserPrefixAccumulator`]'s fold.
pub fn prefixes_per_user(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> Vec<(Asn, NetworkType, usize)> {
    let mut map: BTreeMap<Asn, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
    for event in events {
        user_prefix_observe(&mut map, event);
    }
    user_prefix_rows(map, refdata)
}

fn user_prefix_observe(map: &mut BTreeMap<Asn, BTreeSet<Ipv4Prefix>>, event: &BlackholeEvent) {
    for user in &event.users {
        map.entry(*user).or_default().insert(event.prefix);
    }
}

fn user_prefix_rows(
    map: BTreeMap<Asn, BTreeSet<Ipv4Prefix>>,
    refdata: &ReferenceData,
) -> Vec<(Asn, NetworkType, usize)> {
    map.into_iter().map(|(asn, set)| (asn, refdata.network_type(asn), set.len())).collect()
}

/// Fig. 5(b) as a mergeable accumulator.
#[derive(Debug, Clone)]
pub struct UserPrefixAccumulator {
    refdata: Arc<ReferenceData>,
    map: BTreeMap<Asn, BTreeSet<Ipv4Prefix>>,
}

impl UserPrefixAccumulator {
    /// An empty accumulator over the given reference data.
    pub fn new(refdata: Arc<ReferenceData>) -> Self {
        UserPrefixAccumulator { refdata, map: BTreeMap::new() }
    }
}

impl EventAccumulator for UserPrefixAccumulator {
    type Output = Vec<(Asn, NetworkType, usize)>;

    fn observe(&mut self, event: &BlackholeEvent) {
        user_prefix_observe(&mut self.map, event);
    }

    fn merge(&mut self, other: Self) {
        for (user, set) in other.map {
            self.map.entry(user).or_default().extend(set);
        }
    }

    fn finalize(self) -> Vec<(Asn, NetworkType, usize)> {
        user_prefix_rows(self.map, &self.refdata)
    }
}

/// The provider/user ASN sets behind Fig. 6 (shared by the batch
/// function and the accumulator).
#[derive(Debug, Clone, Default)]
struct CountrySets {
    providers: BTreeSet<Asn>,
    users: BTreeSet<Asn>,
}

impl CountrySets {
    fn observe(&mut self, event: &BlackholeEvent, refdata: &ReferenceData) {
        for provider in &event.providers {
            match provider {
                ProviderId::As(asn) => {
                    self.providers.insert(*asn);
                }
                ProviderId::Ixp(id) => {
                    if let Some(asn) = refdata.route_server_of(*id) {
                        self.providers.insert(asn);
                    }
                }
            }
        }
        self.users.extend(event.users.iter().copied());
    }

    fn counts(
        &self,
        refdata: &ReferenceData,
    ) -> (BTreeMap<&'static str, usize>, BTreeMap<&'static str, usize>) {
        let count = |set: &BTreeSet<Asn>| {
            let mut map: BTreeMap<&'static str, usize> = BTreeMap::new();
            for asn in set {
                *map.entry(refdata.country(*asn)).or_default() += 1;
            }
            map
        };
        (count(&self.providers), count(&self.users))
    }
}

/// Per-country counts of providers and users (Fig. 6). Thin wrapper over
/// [`CountryAccumulator`]'s fold.
pub fn per_country(
    events: &[BlackholeEvent],
    refdata: &ReferenceData,
) -> (BTreeMap<&'static str, usize>, BTreeMap<&'static str, usize>) {
    let mut sets = CountrySets::default();
    for event in events {
        sets.observe(event, refdata);
    }
    sets.counts(refdata)
}

/// Fig. 6 as a mergeable accumulator.
#[derive(Debug, Clone)]
pub struct CountryAccumulator {
    refdata: Arc<ReferenceData>,
    sets: CountrySets,
}

impl CountryAccumulator {
    /// An empty accumulator over the given reference data.
    pub fn new(refdata: Arc<ReferenceData>) -> Self {
        CountryAccumulator { refdata, sets: CountrySets::default() }
    }
}

impl EventAccumulator for CountryAccumulator {
    type Output = (BTreeMap<&'static str, usize>, BTreeMap<&'static str, usize>);

    fn observe(&mut self, event: &BlackholeEvent) {
        self.sets.observe(event, &self.refdata);
    }

    fn merge(&mut self, other: Self) {
        self.sets.providers.extend(other.sets.providers);
        self.sets.users.extend(other.sets.users);
    }

    fn finalize(self) -> Self::Output {
        self.sets.counts(&self.refdata)
    }
}

/// Histogram of #providers per event (Fig. 7(b)). Thin wrapper over
/// [`ProvidersPerEventAccumulator`].
pub fn providers_per_event(events: &[BlackholeEvent]) -> BTreeMap<usize, usize> {
    let mut acc = ProvidersPerEventAccumulator::default();
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

/// Fig. 7(b) as a mergeable accumulator.
#[derive(Debug, Clone, Default)]
pub struct ProvidersPerEventAccumulator {
    hist: BTreeMap<usize, usize>,
}

impl EventAccumulator for ProvidersPerEventAccumulator {
    type Output = BTreeMap<usize, usize>;

    fn observe(&mut self, event: &BlackholeEvent) {
        *self.hist.entry(event.providers.len()).or_default() += 1;
    }

    fn merge(&mut self, other: Self) {
        for (k, n) in other.hist {
            *self.hist.entry(k).or_default() += n;
        }
    }

    fn finalize(self) -> BTreeMap<usize, usize> {
        self.hist
    }
}

/// Histogram of collector↔provider AS distances (Fig. 7(c)); the
/// `NoPath` bucket is the bundling share. Thin wrapper over
/// [`DistanceAccumulator`].
pub fn distance_histogram(events: &[BlackholeEvent]) -> BTreeMap<DetectionDistance, usize> {
    let mut acc = DistanceAccumulator::default();
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

/// Fig. 7(c) as a mergeable accumulator.
#[derive(Debug, Clone, Default)]
pub struct DistanceAccumulator {
    hist: BTreeMap<DetectionDistance, usize>,
}

impl EventAccumulator for DistanceAccumulator {
    type Output = BTreeMap<DetectionDistance, usize>;

    fn observe(&mut self, event: &BlackholeEvent) {
        for d in &event.distances {
            *self.hist.entry(*d).or_default() += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        for (d, n) in other.hist {
            *self.hist.entry(d).or_default() += n;
        }
    }

    fn finalize(self) -> BTreeMap<DetectionDistance, usize> {
        self.hist
    }
}

/// Event durations (Fig. 8 inputs), ascending; open events are measured
/// to `now`. Thin wrapper over [`DurationAccumulator`].
pub fn durations(events: &[BlackholeEvent], now: SimTime) -> Vec<SimDuration> {
    let mut acc = DurationAccumulator::new(now);
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

/// Fig. 8(a) as a mergeable accumulator. The sample list is sorted at
/// `finalize` so the output is independent of observation order.
#[derive(Debug, Clone)]
pub struct DurationAccumulator {
    now: SimTime,
    samples: Vec<SimDuration>,
}

impl DurationAccumulator {
    /// An empty accumulator measuring open events to `now`.
    pub fn new(now: SimTime) -> Self {
        DurationAccumulator { now, samples: Vec::new() }
    }
}

impl EventAccumulator for DurationAccumulator {
    type Output = Vec<SimDuration>;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.samples.push(event.duration(self.now));
    }

    fn merge(&mut self, other: Self) {
        assert_eq!(self.now, other.now, "duration accumulators must share one `now`");
        self.samples.extend(other.samples);
    }

    fn finalize(mut self) -> Vec<SimDuration> {
        self.samples.sort_unstable();
        self.samples
    }
}

/// Distinct blackholed prefixes (the Fig. 7(a) scan census and §8
/// reputation input). Thin wrapper over [`PrefixSetAccumulator`].
pub fn blackholed_prefixes(events: &[BlackholeEvent]) -> BTreeSet<Ipv4Prefix> {
    let mut acc = PrefixSetAccumulator::default();
    for event in events {
        acc.observe(event);
    }
    acc.finalize()
}

/// The blackholed-prefix census as a mergeable accumulator.
#[derive(Debug, Clone, Default)]
pub struct PrefixSetAccumulator {
    prefixes: BTreeSet<Ipv4Prefix>,
}

impl EventAccumulator for PrefixSetAccumulator {
    type Output = BTreeSet<Ipv4Prefix>;

    fn observe(&mut self, event: &BlackholeEvent) {
        self.prefixes.insert(event.prefix);
    }

    fn merge(&mut self, other: Self) {
        self.prefixes.extend(other.prefixes);
    }

    fn finalize(self) -> BTreeSet<Ipv4Prefix> {
        self.prefixes
    }
}

#[cfg(test)]
mod tests {
    use bh_routing::{deploy, CollectorConfig};
    use bh_topology::{IxpId, TopologyBuilder, TopologyConfig};

    use crate::session::DatasetVisibility;

    use super::*;

    fn refdata() -> ReferenceData {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        ReferenceData::build(&t, &d)
    }

    fn event(
        prefix: &str,
        providers: Vec<ProviderId>,
        users: Vec<u32>,
        start: u64,
        end: Option<u64>,
    ) -> BlackholeEvent {
        BlackholeEvent {
            prefix: prefix.parse().unwrap(),
            providers: providers.into_iter().collect(),
            users: users.into_iter().map(Asn::new).collect(),
            start: SimTime::from_unix(start),
            end: end.map(SimTime::from_unix),
            peer_count: 1,
            datasets: BTreeSet::from([DataSource::Ris]),
            distances: BTreeSet::from([DetectionDistance::Hops(1)]),
            bundled_detection: false,
        }
    }

    #[test]
    fn daily_series_counts_active_days() {
        let day = 86_400u64;
        let events = vec![
            // Active on days 0 and 1.
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![10], 10, Some(day + 10)),
            // Active on day 1 only.
            event(
                "2.2.2.2/32",
                vec![ProviderId::As(Asn::new(2))],
                vec![11],
                day + 5,
                Some(day + 500),
            ),
            // Open event: active from day 2 to the end of the window.
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(1))], vec![10], 2 * day + 5, None),
        ];
        let series = daily_series(&events, SimTime::ZERO, SimTime::from_unix(4 * day));
        assert_eq!(series.len(), 4);
        assert_eq!((series[0].providers, series[0].users, series[0].prefixes), (1, 1, 1));
        assert_eq!((series[1].providers, series[1].users, series[1].prefixes), (2, 2, 2));
        assert_eq!((series[2].providers, series[2].users, series[2].prefixes), (1, 1, 1));
        assert_eq!((series[3].providers, series[3].users, series[3].prefixes), (1, 1, 1));
    }

    #[test]
    fn daily_series_accumulator_merges_like_batch() {
        let day = 86_400u64;
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![10], 10, Some(day + 10)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(2))], vec![11], day, Some(2 * day)),
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(1))], vec![10], 2 * day, None),
        ];
        let batch = daily_series(&events, SimTime::ZERO, SimTime::from_unix(4 * day));
        // Split the stream 1 / 2 and merge — in reversed merge order.
        let mut a = DailySeriesAccumulator::new(SimTime::ZERO, SimTime::from_unix(4 * day));
        a.observe(&events[0]);
        let mut b = DailySeriesAccumulator::new(SimTime::ZERO, SimTime::from_unix(4 * day));
        b.observe(&events[1]);
        b.observe(&events[2]);
        b.merge(a);
        assert_eq!(b.finalize(), batch);
    }

    #[test]
    fn providers_per_event_histogram() {
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1)),
            event(
                "2.2.2.2/32",
                vec![ProviderId::As(Asn::new(1)), ProviderId::As(Asn::new(2))],
                vec![],
                0,
                Some(1),
            ),
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(3))], vec![], 0, Some(1)),
        ];
        let hist = providers_per_event(&events);
        assert_eq!(hist.get(&1), Some(&2));
        assert_eq!(hist.get(&2), Some(&1));
    }

    #[test]
    fn table4_groups_by_provider_type() {
        let r = refdata();
        // Use a real IXP id from refdata's topology.
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::Ixp(IxpId(0))], vec![10, 11], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::Ixp(IxpId(0))], vec![10], 0, Some(1)),
        ];
        let rows = table4(&events, &r);
        let ixp_row = rows.iter().find(|row| row.network_type == NetworkType::Ixp).unwrap();
        assert_eq!(ixp_row.providers, 1);
        assert_eq!(ixp_row.users, 2);
        assert_eq!(ixp_row.prefixes, 2);
        let transit_row =
            rows.iter().find(|row| row.network_type == NetworkType::TransitAccess).unwrap();
        assert_eq!(transit_row.providers, 0);
    }

    #[test]
    fn table4_accumulator_matches_batch() {
        let r = Arc::new(refdata());
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::Ixp(IxpId(0))], vec![10, 11], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(9))], vec![10], 0, Some(1)),
        ];
        let mut a = TypeAccumulator::new(r.clone());
        a.observe(&events[1]);
        let mut b = TypeAccumulator::new(r.clone());
        b.observe(&events[0]);
        a.merge(b);
        assert_eq!(a.finalize(), table4(&events, &r));
    }

    #[test]
    fn table3_unique_counting() {
        let r = refdata();
        let mut per_dataset = BTreeMap::new();
        let p1 = ProviderId::As(Asn::new(1));
        let p2 = ProviderId::As(Asn::new(2));
        per_dataset.insert(
            DataSource::Ris,
            DatasetVisibility {
                providers: FxHashSet::from_iter([p1, p2]),
                users: FxHashSet::from_iter([Asn::new(10)]),
                prefixes: FxHashSet::from_iter(["1.1.1.1/32".parse().unwrap()]),
            },
        );
        per_dataset.insert(
            DataSource::Cdn,
            DatasetVisibility {
                providers: FxHashSet::from_iter([p1]),
                users: FxHashSet::from_iter([Asn::new(10), Asn::new(11)]),
                prefixes: FxHashSet::from_iter([
                    "1.1.1.1/32".parse().unwrap(),
                    "2.2.2.2/32".parse().unwrap(),
                ]),
            },
        );
        let result = InferenceResult {
            events: vec![],
            census: Default::default(),
            stats: Default::default(),
            per_dataset,
        };
        let rows = table3(&result, &r);
        let ris = rows.iter().find(|row| row.source == "RIS").unwrap();
        assert_eq!(ris.providers, 2);
        assert_eq!(ris.unique_providers, 1); // p2 only at RIS
        assert_eq!(ris.unique_users, 0);
        let cdn = rows.iter().find(|row| row.source == "CDN").unwrap();
        assert_eq!(cdn.unique_users, 1); // user 11 only at CDN
        assert_eq!(cdn.unique_prefixes, 1);
        let all = rows.iter().find(|row| row.source == "ALL").unwrap();
        assert_eq!(all.providers, 2);
        assert_eq!(all.users, 2);
        assert_eq!(all.prefixes, 2);

        // The accumulator path produces the identical rows, including
        // when the visibility map arrives split across two observations.
        let mut acc = VisibilityAccumulator::new(Arc::new(refdata()));
        for (dataset, vis) in &result.per_dataset {
            let single = BTreeMap::from([(*dataset, vis.clone())]);
            acc.observe_visibility(&single);
        }
        assert_eq!(acc.finalize(), rows);
    }

    #[test]
    fn per_country_uses_refdata() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let r = ReferenceData::build(&t, &d);
        let some_as = t.ases().next().unwrap().asn;
        let events = vec![event(
            "1.1.1.1/32",
            vec![ProviderId::As(some_as)],
            vec![some_as.value()],
            0,
            Some(1),
        )];
        let (providers, users) = per_country(&events, &r);
        assert_eq!(providers.values().sum::<usize>(), 1);
        assert_eq!(users.values().sum::<usize>(), 1);
        assert!(providers.contains_key(r.country(some_as)));
    }

    #[test]
    fn prefix_count_helpers() {
        let r = refdata();
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![10], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![10], 0, Some(1)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![10], 5, Some(6)),
        ];
        let per_provider = prefixes_per_provider(&events, &r);
        assert_eq!(per_provider.len(), 1);
        assert_eq!(per_provider[0].2, 2); // distinct prefixes
        let per_user = prefixes_per_user(&events, &r);
        assert_eq!(per_user.len(), 1);
        assert_eq!(per_user[0].2, 2);
        assert_eq!(
            blackholed_prefixes(&events),
            BTreeSet::from(["1.1.1.1/32".parse().unwrap(), "2.2.2.2/32".parse().unwrap()])
        );
    }

    #[test]
    fn distance_histogram_counts_event_distances() {
        let mut e1 = event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1));
        e1.distances = BTreeSet::from([DetectionDistance::NoPath, DetectionDistance::Hops(1)]);
        let e2 = event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(1));
        let hist = distance_histogram(&[e1, e2]);
        assert_eq!(hist.get(&DetectionDistance::NoPath), Some(&1));
        assert_eq!(hist.get(&DetectionDistance::Hops(1)), Some(&2));
    }

    #[test]
    fn durations_are_sorted_and_measure_open_events_to_now() {
        let events = vec![
            event("1.1.1.1/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(500)),
            event("2.2.2.2/32", vec![ProviderId::As(Asn::new(1))], vec![], 0, Some(10)),
            event("3.3.3.3/32", vec![ProviderId::As(Asn::new(1))], vec![], 100, None),
        ];
        let ds = durations(&events, SimTime::from_unix(1_100));
        assert_eq!(
            ds,
            vec![SimDuration::secs(10), SimDuration::secs(500), SimDuration::secs(1_000)]
        );
    }
}
