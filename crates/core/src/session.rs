//! Streaming inference sessions — §4.2 of the paper as an *online*
//! algorithm.
//!
//! The methodology, faithfully:
//!
//! * dictionary-driven tagging of announcements,
//! * disambiguation of shared communities via the AS path,
//! * IXP detection via route-server ASN on the path *or* peer-ip inside a
//!   PeeringDB peering LAN,
//! * blackholing-user inference (the AS-hop before the provider, after
//!   prepending removal; the peer-as for route-server views; the origin
//!   for bundled detections),
//! * per-(prefix, peer) state with explicit *and* implicit withdrawals,
//! * cross-peer correlation into prefix-level events,
//! * initialization from a RIB dump with "starting time zero",
//! * a community/prefix-length census feeding the extended-dictionary
//!   inference (Fig. 2).
//!
//! The API shape: a [`SessionBuilder`] assembles an owned
//! [`InferenceSession`] (dictionary and reference data behind [`Arc`], so
//! sessions are `Send` and outlive no borrow). Elements arrive one at a
//! time via [`InferenceSession::push`] — or from any
//! [`ElemSource`] via [`InferenceSession::ingest`], including a
//! [`MergedSource`](bh_routing::MergedSource) or a parallel
//! [`CollectorFleet`](bh_routing::CollectorFleet) stream merging a whole
//! multi-collector archive set — and finished events can be handed to
//! consumers mid-stream with [`InferenceSession::drain_closed`].
//! [`InferenceSession::checkpoint`] snapshots the mutable state so a
//! long-running scan can be suspended and resumed
//! ([`SessionBuilder::resume`]) — including mid-fleet, since the fleet
//! stream is just another source.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::bogon::BogonFilter;
use bh_bgp_types::community::Community;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_irr::{BlackholeDictionary, CommunityPrefixCensus};
use bh_routing::{BgpElem, DataSource, ElemSource, ElemType, PeerKey};

use crate::accumulate::{EventAccumulator, EventCollector};
use crate::events::{BlackholeEvent, DetectionDistance, ProviderId};
use crate::refdata::ReferenceData;
use crate::shard::ShardedSession;

/// One provider detection extracted from a single announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The inferred provider.
    pub provider: ProviderId,
    /// The inferred blackholing user.
    pub user: Option<Asn>,
    /// Collector-to-provider distance (Fig. 7(c)).
    pub distance: DetectionDistance,
    /// The triggering community.
    pub community: Community,
}

/// Counters for session behavior (useful for pipeline benchmarking and
/// methodology diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Elements processed.
    pub elems: u64,
    /// Announcements carrying at least one dictionary community.
    pub tagged_announcements: u64,
    /// Announcements dropped by data cleaning (bogons).
    pub cleaned: u64,
    /// Detections discarded because an ambiguous community had no
    /// candidate provider on the AS path.
    pub ambiguous_unresolved: u64,
    /// Implicit withdrawals observed (re-announcement without tags).
    pub implicit_withdrawals: u64,
    /// Explicit withdrawals that ended a peer observation.
    pub explicit_withdrawals: u64,
    /// Detections that relied on community bundling (no provider on path).
    pub bundled_detections: u64,
}

impl EngineStats {
    /// Fold another session's counters into this one (shard merging).
    pub fn merge(&mut self, other: EngineStats) {
        self.elems += other.elems;
        self.tagged_announcements += other.tagged_announcements;
        self.cleaned += other.cleaned;
        self.ambiguous_unresolved += other.ambiguous_unresolved;
        self.implicit_withdrawals += other.implicit_withdrawals;
        self.explicit_withdrawals += other.explicit_withdrawals;
        self.bundled_detections += other.bundled_detections;
    }
}

/// Per-dataset visibility accumulators (Table 3 inputs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetVisibility {
    /// Providers observed via this platform.
    pub providers: BTreeSet<ProviderId>,
    /// Users observed via this platform.
    pub users: BTreeSet<Asn>,
    /// Prefixes observed via this platform.
    pub prefixes: BTreeSet<Ipv4Prefix>,
}

impl DatasetVisibility {
    /// Union another accumulator into this one (shard merging).
    pub fn merge(&mut self, other: &DatasetVisibility) {
        self.providers.extend(other.providers.iter().copied());
        self.users.extend(other.users.iter().copied());
        self.prefixes.extend(other.prefixes.iter().copied());
    }
}

#[derive(Debug, Clone, Default)]
struct OpenEvent {
    providers: BTreeSet<ProviderId>,
    users: BTreeSet<Asn>,
    start: SimTime,
    open_peers: BTreeSet<PeerKey>,
    all_peers: BTreeSet<PeerKey>,
    datasets: BTreeSet<DataSource>,
    distances: BTreeSet<DetectionDistance>,
    bundled: bool,
}

/// Configuration toggles — the ablation switches called out in DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Detect via community bundling when the provider is absent from the
    /// path (§4.2; disabling this is the Fig. 7(c) ablation — the paper
    /// credits bundling with ~half of all inferences).
    pub bundling_detection: bool,
    /// Track state per (prefix, peer) and correlate (the paper's method).
    /// Disabled, state collapses to per-prefix only — the Fig. 8
    /// ablation showing why per-peer tracking matters.
    pub per_peer_state: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { bundling_detection: true, per_peer_state: true }
    }
}

/// Detection distance per the paper's 1-indexed convention, saturating
/// rather than wrapping on pathological (>254-hop) paths.
fn detection_hops(distance_from_peer: usize) -> DetectionDistance {
    DetectionDistance::Hops(u8::try_from(distance_from_peer.saturating_add(1)).unwrap_or(u8::MAX))
}

/// Builds [`InferenceSession`]s (and their sharded parallel variant).
///
/// The dictionary and reference data travel behind [`Arc`]: one snapshot
/// is shared by every session and shard worker, with no lifetime tie
/// between the session and its inputs.
#[derive(Clone)]
pub struct SessionBuilder {
    pub(crate) dict: Arc<BlackholeDictionary>,
    pub(crate) refdata: Arc<ReferenceData>,
    pub(crate) config: EngineConfig,
}

impl SessionBuilder {
    /// Start from a dictionary and reference-data snapshot.
    pub fn new(dict: Arc<BlackholeDictionary>, refdata: Arc<ReferenceData>) -> Self {
        SessionBuilder { dict, refdata, config: EngineConfig::default() }
    }

    /// Replace the whole configuration (ablations).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggle bundling detection (Fig. 7(c) ablation).
    pub fn bundling_detection(mut self, on: bool) -> Self {
        self.config.bundling_detection = on;
        self
    }

    /// Toggle per-(prefix, peer) state tracking (Fig. 8 ablation).
    pub fn per_peer_state(mut self, on: bool) -> Self {
        self.config.per_peer_state = on;
        self
    }

    /// Build a fresh single-threaded session.
    pub fn build(self) -> InferenceSession {
        InferenceSession {
            dict: self.dict,
            refdata: self.refdata,
            config: self.config,
            bogons: BogonFilter::new(),
            state: SessionState::default(),
        }
    }

    /// Build a session that resumes from a [`SessionCheckpoint`].
    ///
    /// The checkpoint's configuration wins over the builder's: the
    /// resumed session continues the stream under exactly the semantics
    /// the snapshotted state was built with (mixing per-peer modes
    /// mid-stream would strand open events).
    pub fn resume(self, checkpoint: SessionCheckpoint) -> InferenceSession {
        let mut session = self.config(checkpoint.config).build();
        session.state = checkpoint.state;
        session
    }

    /// Build a [`ShardedSession`] that hash-partitions the element
    /// stream by prefix across `shards` worker threads.
    pub fn build_sharded(self, shards: usize) -> ShardedSession {
        ShardedSession::spawn(self, shards, EventCollector::default())
    }

    /// Build a sharded session whose workers stream their closed events
    /// through a clone of `accumulator` as they go — inline analytics
    /// with no per-shard event `Vec`. The per-shard accumulators are
    /// merged deterministically at the
    /// [`finish_parts`](ShardedSession::finish_parts) barrier.
    pub fn build_sharded_with<A>(self, shards: usize, accumulator: A) -> ShardedSession<A>
    where
        A: EventAccumulator + Clone + Send + 'static,
    {
        ShardedSession::spawn(self, shards, accumulator)
    }
}

/// The mutable inference state — everything a checkpoint must capture.
#[derive(Debug, Clone, Default)]
struct SessionState {
    census: CommunityPrefixCensus,
    open: HashMap<Ipv4Prefix, OpenEvent>,
    closed: Vec<BlackholeEvent>,
    per_dataset: BTreeMap<DataSource, DatasetVisibility>,
    stats: EngineStats,
}

/// An opaque snapshot of a session's mutable state.
///
/// Produced by [`InferenceSession::checkpoint`]; a new session picks it
/// up via [`SessionBuilder::resume`] and continues the stream exactly
/// where the original left off — including the original's
/// configuration, which travels with the snapshot. Closed events not
/// yet handed out by [`InferenceSession::drain_closed`] travel with the
/// checkpoint too.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    state: SessionState,
    config: EngineConfig,
}

impl SessionCheckpoint {
    /// Events still open (active) at snapshot time.
    pub fn open_events(&self) -> usize {
        self.state.open.len()
    }

    /// Closed events captured in the snapshot (not yet drained).
    pub fn pending_closed(&self) -> usize {
        self.state.closed.len()
    }
}

/// The streaming inference session — the owned replacement for the old
/// borrowed `InferenceEngine<'a>`.
pub struct InferenceSession {
    dict: Arc<BlackholeDictionary>,
    refdata: Arc<ReferenceData>,
    config: EngineConfig,
    bogons: BogonFilter,
    state: SessionState,
}

impl InferenceSession {
    /// Shorthand for `SessionBuilder::new(dict, refdata).build()`.
    pub fn new(dict: Arc<BlackholeDictionary>, refdata: Arc<ReferenceData>) -> Self {
        SessionBuilder::new(dict, refdata).build()
    }

    /// Session statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.state.stats
    }

    /// The community/prefix-length census (Fig. 2, extended dictionary).
    pub fn census(&self) -> &CommunityPrefixCensus {
        &self.state.census
    }

    /// Per-dataset visibility accumulators.
    pub fn dataset_visibility(&self) -> &BTreeMap<DataSource, DatasetVisibility> {
        &self.state.per_dataset
    }

    /// Events currently open (active, not yet ended).
    pub fn open_event_count(&self) -> usize {
        self.state.open.len()
    }

    /// Initialize from a RIB dump: tagged prefixes present in the table
    /// start with time zero ("we cannot accurately pinpoint the start
    /// time … we use an initial starting time of zero").
    pub fn initialize_from_rib(&mut self, state: &[BgpElem]) {
        for elem in state {
            self.push_rib(elem);
        }
    }

    /// Push one RIB-dump entry (start time zero); the streaming sibling
    /// of [`InferenceSession::initialize_from_rib`].
    pub fn push_rib(&mut self, elem: &BgpElem) {
        if elem.elem_type == ElemType::Announce {
            self.process_announce(elem, SimTime::ZERO);
        }
    }

    /// Process one element in arrival order.
    pub fn push(&mut self, elem: &BgpElem) {
        match elem.elem_type {
            ElemType::Announce => self.process_announce(elem, elem.time),
            ElemType::Withdraw => self.process_withdraw(elem),
        }
    }

    /// Drain every element of a source, in order; returns how many were
    /// processed. Constant memory for streaming sources.
    pub fn ingest<S: ElemSource + ?Sized>(&mut self, source: &mut S) -> u64 {
        let mut n = 0;
        while let Some(elem) = source.next_elem() {
            self.push(elem);
            n += 1;
        }
        n
    }

    /// Hand out the events closed so far and forget them; the mid-stream
    /// consumer API. The union of everything drained plus the events of
    /// the final [`InferenceSession::finish`] equals exactly what one
    /// batch run would have produced.
    pub fn drain_closed(&mut self) -> Vec<BlackholeEvent> {
        std::mem::take(&mut self.state.closed)
    }

    /// Stream the events closed so far into an accumulator and forget
    /// them; returns how many were folded in. The constant-memory
    /// sibling of [`InferenceSession::drain_closed`]: nothing is handed
    /// out, so no event `Vec` ever accumulates.
    pub fn drain_closed_into<A: EventAccumulator>(&mut self, accumulator: &mut A) -> usize {
        let n = self.state.closed.len();
        for event in self.state.closed.drain(..) {
            accumulator.observe_owned(event);
        }
        n
    }

    /// Snapshot the mutable state (and configuration) for later
    /// [`SessionBuilder::resume`].
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint { state: self.state.clone(), config: self.config }
    }

    /// Finish: close nothing (events still active stay open with
    /// `end: None`) and return every remaining event plus final census
    /// and stats. Thin wrapper over
    /// [`InferenceSession::finish_with`] and an [`EventCollector`].
    pub fn finish(self) -> InferenceResult {
        let mut collector = EventCollector::default();
        let summary = self.finish_with(&mut collector);
        InferenceResult {
            events: collector.finalize(),
            census: summary.census,
            stats: summary.stats,
            per_dataset: summary.per_dataset,
        }
    }

    /// Finish by streaming every remaining event (undrained closed ones
    /// first, then the still-open ones with `end: None`) into an
    /// accumulator, plus the final per-dataset visibility via
    /// [`EventAccumulator::observe_visibility`]. Returns the summary
    /// outputs (census, counters, visibility); the full event `Vec` is
    /// never materialized.
    pub fn finish_with<A: EventAccumulator>(mut self, accumulator: &mut A) -> StreamSummary {
        self.drain_closed_into(accumulator);
        let open: Vec<Ipv4Prefix> = self.state.open.keys().copied().collect();
        for prefix in open {
            let oe = self.state.open.remove(&prefix).expect("key exists");
            accumulator.observe_owned(Self::to_event(prefix, oe, None));
        }
        accumulator.observe_visibility(&self.state.per_dataset);
        StreamSummary {
            census: self.state.census,
            stats: self.state.stats,
            per_dataset: self.state.per_dataset,
        }
    }

    // ---- internals -------------------------------------------------------

    fn to_event(prefix: Ipv4Prefix, oe: OpenEvent, end: Option<SimTime>) -> BlackholeEvent {
        BlackholeEvent {
            prefix,
            providers: oe.providers,
            users: oe.users,
            start: oe.start,
            end,
            peer_count: oe.all_peers.len(),
            datasets: oe.datasets,
            distances: oe.distances,
            bundled_detection: oe.bundled,
        }
    }

    /// The §4.2 detection procedure for one announcement.
    pub fn detect(&mut self, elem: &BgpElem) -> Vec<Detection> {
        let mut detections: Vec<Detection> = Vec::new();
        let path = elem.as_path.without_prepending();

        let mut consider = |session: &mut Self, community: Community, candidates: Vec<Asn>| {
            if candidates.is_empty() {
                return;
            }
            let unambiguous = candidates.len() == 1;
            let mut resolved_any = false;
            for candidate in candidates {
                if let Some(ixp) = session.refdata.ixp_of_route_server(candidate) {
                    // IXP provider: route-server ASN on path, or peer-ip
                    // inside the IXP's peering LAN.
                    if path.contains(candidate) {
                        let user = path.hop_before(candidate);
                        let distance = if session.refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp)
                        {
                            DetectionDistance::Hops(0)
                        } else {
                            detection_hops(path.distance_from_peer(candidate).unwrap_or(0))
                        };
                        detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user,
                            distance,
                            community,
                        });
                        resolved_any = true;
                    } else if session.refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp) {
                        detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user: Some(elem.peer_asn),
                            distance: DetectionDistance::Hops(0),
                            community,
                        });
                        resolved_any = true;
                    }
                } else if path.contains(candidate) {
                    // The hop before the provider — skipping route-server
                    // ASNs, which appear on paths when a provider learned
                    // the route across an IXP (the RS is not the user).
                    let flat = path.asns();
                    let user = flat
                        .iter()
                        .position(|&a| a == candidate)
                        .and_then(|pos| {
                            flat[pos + 1..]
                                .iter()
                                .find(|a| session.refdata.ixp_of_route_server(**a).is_none())
                                .copied()
                        })
                        .or(Some(candidate));
                    detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user,
                        distance: detection_hops(path.distance_from_peer(candidate).unwrap_or(0)),
                        community,
                    });
                    resolved_any = true;
                } else if unambiguous && session.config.bundling_detection {
                    // Bundled community: the provider never propagated the
                    // route, but the unambiguous tag identifies it.
                    detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user: path.origin(),
                        distance: DetectionDistance::NoPath,
                        community,
                    });
                    session.state.stats.bundled_detections += 1;
                    resolved_any = true;
                }
            }
            if !resolved_any {
                session.state.stats.ambiguous_unresolved += 1;
            }
        };

        for community in elem.communities.iter() {
            let candidates = self.dict.providers_for(community);
            consider(self, community, candidates);
        }
        for large in elem.communities.iter_large() {
            let candidates = self.dict.providers_for_large(large);
            // Attribute large-community detections to a synthetic classic
            // community for uniform bookkeeping (high half of the global
            // admin, value 666 — purely presentational).
            let display = Community::from_parts((large.global_admin & 0xFFFF) as u16, 666);
            consider(self, display, candidates);
        }

        detections.sort_by_key(|d| d.provider);
        detections.dedup_by_key(|d| d.provider);
        detections
    }

    fn process_announce(&mut self, elem: &BgpElem, start_time: SimTime) {
        self.state.stats.elems += 1;
        // Data cleaning (§3): bogons and <-/8 never considered.
        if !self.bogons.is_routable(&elem.prefix) {
            self.state.stats.cleaned += 1;
            return;
        }
        // Census of every community on every announcement (Fig. 2 input).
        let communities: Vec<Community> = elem.communities.iter().collect();
        self.state.census.record(&communities, elem.prefix.length());

        let detections = self.detect(elem);
        let peer = elem.peer_key();

        if detections.is_empty() {
            // Implicit withdrawal: previously blackholed at this peer,
            // now announced without tags (§4.2).
            if let Some(oe) = self.state.open.get_mut(&elem.prefix) {
                if oe.open_peers.remove(&peer) {
                    self.state.stats.implicit_withdrawals += 1;
                    if oe.open_peers.is_empty() {
                        let oe = self.state.open.remove(&elem.prefix).expect("open event exists");
                        self.state.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                    }
                }
            }
            return;
        }
        self.state.stats.tagged_announcements += 1;

        let oe = self
            .state
            .open
            .entry(elem.prefix)
            .or_insert_with(|| OpenEvent { start: start_time, ..Default::default() });
        if self.config.per_peer_state {
            oe.open_peers.insert(peer);
        } else {
            // Ablation: single logical peer — de-activations seen by any
            // peer close the event.
            oe.open_peers.insert(PeerKey {
                dataset: peer.dataset,
                collector: 0,
                peer_asn: Asn::new(0),
            });
        }
        oe.all_peers.insert(peer);
        oe.datasets.insert(elem.dataset);
        let vis = self.state.per_dataset.entry(elem.dataset).or_default();
        vis.prefixes.insert(elem.prefix);
        for d in &detections {
            oe.providers.insert(d.provider);
            oe.distances.insert(d.distance);
            if d.distance == DetectionDistance::NoPath {
                oe.bundled = true;
            }
            if let Some(user) = d.user {
                oe.users.insert(user);
                vis.users.insert(user);
            }
            vis.providers.insert(d.provider);
        }
    }

    fn process_withdraw(&mut self, elem: &BgpElem) {
        self.state.stats.elems += 1;
        let peer = if self.config.per_peer_state {
            elem.peer_key()
        } else {
            PeerKey { dataset: elem.dataset, collector: 0, peer_asn: Asn::new(0) }
        };
        if let Some(oe) = self.state.open.get_mut(&elem.prefix) {
            if oe.open_peers.remove(&peer) {
                self.state.stats.explicit_withdrawals += 1;
                if oe.open_peers.is_empty() {
                    let oe = self.state.open.remove(&elem.prefix).expect("open event exists");
                    self.state.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                }
            }
        }
    }
}

/// The non-event outputs of a session: what
/// [`InferenceSession::finish_with`] returns when the events themselves
/// streamed into an accumulator instead of materializing.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The community/prefix-length census.
    pub census: CommunityPrefixCensus,
    /// Session counters.
    pub stats: EngineStats,
    /// Per-dataset visibility (Table 3 inputs).
    pub per_dataset: BTreeMap<DataSource, DatasetVisibility>,
}

impl StreamSummary {
    /// An empty summary (the merge identity).
    pub fn empty() -> Self {
        StreamSummary {
            census: CommunityPrefixCensus::new(),
            stats: EngineStats::default(),
            per_dataset: BTreeMap::new(),
        }
    }

    /// Fold another summary in: census/stats/visibility all merge
    /// commutatively (the shard barrier's summary half).
    pub fn merge(&mut self, other: StreamSummary) {
        self.census.merge(&other.census);
        self.stats.merge(other.stats);
        for (dataset, vis) in &other.per_dataset {
            self.per_dataset.entry(*dataset).or_default().merge(vis);
        }
    }
}

/// Everything a session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// All inferred events (closed ones have `end: Some(_)`).
    pub events: Vec<BlackholeEvent>,
    /// The community/prefix-length census.
    pub census: CommunityPrefixCensus,
    /// Session counters.
    pub stats: EngineStats,
    /// Per-dataset visibility (Table 3 inputs).
    pub per_dataset: BTreeMap<DataSource, DatasetVisibility>,
}

impl InferenceResult {
    /// Fold another result into this one: events concatenate and
    /// re-sort canonically via the [`EventCollector`], the summary
    /// halves merge commutatively via [`StreamSummary::merge`] — so
    /// shard-merge semantics live in exactly one place each.
    pub fn merge(&mut self, other: InferenceResult) {
        let mut collector = EventCollector::default();
        for event in std::mem::take(&mut self.events) {
            collector.observe_owned(event);
        }
        for event in other.events {
            collector.observe_owned(event);
        }
        let mut summary = StreamSummary {
            census: std::mem::take(&mut self.census),
            stats: self.stats,
            per_dataset: std::mem::take(&mut self.per_dataset),
        };
        summary.merge(StreamSummary {
            census: other.census,
            stats: other.stats,
            per_dataset: other.per_dataset,
        });
        self.events = collector.finalize();
        self.census = summary.census;
        self.stats = summary.stats;
        self.per_dataset = summary.per_dataset;
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::community::CommunitySet;
    use bh_routing::{deploy, CollectorConfig, SliceSource};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    struct Setup {
        dict: Arc<BlackholeDictionary>,
        refdata: Arc<ReferenceData>,
        provider: Asn,
        community: Community,
    }

    fn setup() -> Setup {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let mut dict = BlackholeDictionary::default();
        let provider = Asn::new(64_777); // not in the topology: pure unit test
        let community = Community::from_parts(777, 666);
        dict.insert_validated(provider, community);
        Setup { dict: Arc::new(dict), refdata, provider, community }
    }

    impl Setup {
        fn session(&self) -> InferenceSession {
            InferenceSession::new(self.dict.clone(), self.refdata.clone())
        }

        fn builder(&self) -> SessionBuilder {
            SessionBuilder::new(self.dict.clone(), self.refdata.clone())
        }
    }

    fn announce(
        prefix: &str,
        time: u64,
        path: &str,
        communities: Vec<Community>,
        peer: u32,
    ) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: prefix.parse().unwrap(),
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(communities),
            next_hop: None,
        }
    }

    fn withdraw(prefix: &str, time: u64, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Withdraw,
            prefix: prefix.parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    #[test]
    fn basic_event_lifecycle() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.prefix, "9.9.9.9/32".parse().unwrap());
        assert_eq!(e.start, SimTime::from_unix(100));
        assert_eq!(e.end, Some(SimTime::from_unix(160)));
        assert_eq!(e.providers, BTreeSet::from([ProviderId::As(s.provider)]));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)]));
        assert!(!e.bundled_detection);
        assert_eq!(result.stats.explicit_withdrawals, 1);
    }

    #[test]
    fn user_is_hop_before_provider_after_deprepending() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64777 64999 64999 64999",
            vec![s.community],
            100,
        ));
        let result = session.finish();
        assert_eq!(result.events[0].users, BTreeSet::from([Asn::new(64_999)]));
        // Distance counts deprepended hops: peer(100)=pos0, provider pos1
        // → distance 2 per the paper's 1-indexed convention.
        assert!(result.events[0].distances.contains(&DetectionDistance::Hops(2)));
    }

    #[test]
    fn pathological_path_distance_saturates_instead_of_wrapping() {
        // A >254-hop path must clamp the detection distance at u8::MAX,
        // not wrap around (regression: the old `as u8` cast wrapped).
        let s = setup();
        let mut session = s.session();
        let mut hops: Vec<String> = (1..=300u32).map(|k| (1000 + k).to_string()).collect();
        hops.push(s.provider.value().to_string());
        hops.push("64999".to_string());
        session.push(&announce("9.9.9.9/32", 100, &hops.join(" "), vec![s.community], 1001));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(
            result.events[0].distances,
            BTreeSet::from([DetectionDistance::Hops(u8::MAX)]),
            "301-hop distance must saturate at 255"
        );
    }

    #[test]
    fn bundled_detection_when_provider_absent() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert!(e.bundled_detection);
        assert!(e.distances.contains(&DetectionDistance::NoPath));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)])); // origin
        assert_eq!(result.stats.bundled_detections, 1);
    }

    #[test]
    fn bundling_ablation_disables_no_path_detection() {
        let s = setup();
        let mut session = s.builder().bundling_detection(false).build();
        session.push(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = session.finish();
        assert!(result.events.is_empty());
    }

    #[test]
    fn ambiguous_community_requires_path_presence() {
        let s = setup();
        let mut dict = (*s.dict).clone();
        let shared = Community::from_parts(0, 666);
        dict.insert_validated(Asn::new(501), shared);
        dict.insert_validated(Asn::new(502), shared);
        let mut session = InferenceSession::new(Arc::new(dict), s.refdata.clone());
        // Neither 501 nor 502 on path: skipped.
        session.push(&announce("9.9.9.9/32", 100, "100 200 300", vec![shared], 100));
        assert_eq!(session.stats().ambiguous_unresolved, 1);
        // 502 on path: resolved to 502 only.
        session.push(&announce("8.8.8.8/32", 100, "100 502 300", vec![shared], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::As(Asn::new(502))]));
    }

    #[test]
    fn implicit_withdrawal_closes_event() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        // Re-announcement without the tag: implicit withdrawal.
        session.push(&announce("9.9.9.9/32", 200, "100 64777 64999", vec![], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(200)));
        assert_eq!(result.stats.implicit_withdrawals, 1);
    }

    #[test]
    fn per_peer_correlation_takes_last_close() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        // First peer withdraws early; second keeps it until 500.
        session.push(&withdraw("9.9.9.9/32", 150, 100));
        // Still open: only one of two peers closed.
        assert_eq!(session.open_event_count(), 1);
        session.push(&withdraw("9.9.9.9/32", 500, 200));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].start, SimTime::from_unix(100));
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(500)));
        assert_eq!(result.events[0].peer_count, 2);
    }

    #[test]
    fn per_peer_ablation_closes_on_first_withdrawal() {
        let s = setup();
        let mut session = s.builder().per_peer_state(false).build();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        session.push(&withdraw("9.9.9.9/32", 150, 100));
        let result = session.finish();
        // Collapsed state: the early withdrawal ends the event.
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(150)));
    }

    #[test]
    fn rib_initialization_uses_time_zero() {
        let s = setup();
        let mut session = s.session();
        let rib = vec![announce("9.9.9.9/32", 10_000, "100 64777 64999", vec![s.community], 100)];
        session.initialize_from_rib(&rib);
        session.push(&withdraw("9.9.9.9/32", 10_500, 100));
        let result = session.finish();
        assert_eq!(result.events[0].start, SimTime::ZERO);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(10_500)));
    }

    #[test]
    fn on_off_pattern_yields_multiple_events() {
        let s = setup();
        let mut session = s.session();
        for k in 0..3u64 {
            let t0 = 1000 + k * 300;
            session.push(&announce("9.9.9.9/32", t0, "100 64777 64999", vec![s.community], 100));
            session.push(&withdraw("9.9.9.9/32", t0 + 60, 100));
        }
        let result = session.finish();
        assert_eq!(result.events.len(), 3);
        for e in &result.events {
            assert_eq!(e.duration(SimTime::ZERO).as_secs(), 60);
        }
    }

    #[test]
    fn open_events_survive_finish_with_no_end() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, None);
    }

    #[test]
    fn bogon_announcements_are_cleaned() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("10.0.0.1/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert!(result.events.is_empty());
        assert_eq!(result.stats.cleaned, 1);
    }

    #[test]
    fn ixp_detection_via_route_server_on_path() {
        // Use a real generated topology so refdata has IXPs.
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut session = InferenceSession::new(Arc::new(dict), refdata);
        let member = ixp.members[0];
        let elem = announce(
            "9.9.9.9/32",
            100,
            &format!("100 {} {}", ixp.route_server_asn.value(), member.value()),
            vec![Community::BLACKHOLE],
            100,
        );
        session.push(&elem);
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        assert_eq!(result.events[0].users, BTreeSet::from([member]));
    }

    #[test]
    fn ixp_detection_via_peer_ip_in_lan() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut session = InferenceSession::new(Arc::new(dict), refdata);
        let member = ixp.members[0];
        let mut elem = announce(
            "9.9.9.9/32",
            100,
            &format!("{member_v}", member_v = member.value()),
            vec![Community::BLACKHOLE],
            member.value(),
        );
        elem.peer_ip = ixp.member_lan_ip(member).map(std::net::IpAddr::V4).unwrap();
        elem.dataset = DataSource::Pch;
        session.push(&elem);
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        // User = peer-as; distance 0 (collector at the IXP).
        assert_eq!(e.users, BTreeSet::from([member]));
        assert!(e.distances.contains(&DetectionDistance::Hops(0)));
    }

    #[test]
    fn census_records_all_tagged_and_untagged_communities() {
        let s = setup();
        let mut session = s.session();
        let other = Community::from_parts(555, 80);
        session.push(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64999",
            vec![s.community, other],
            100,
        ));
        session.push(&announce("7.0.0.0/16", 100, "100 300", vec![other], 100));
        let result = session.finish();
        assert_eq!(result.census.occurrences(s.community), 1);
        assert_eq!(result.census.occurrences(other), 2);
        assert!(result.census.cooccurs(other, s.community));
    }

    #[test]
    fn multi_provider_bundle_yields_multi_provider_event() {
        let s = setup();
        let mut dict = (*s.dict).clone();
        let c2 = Community::from_parts(888, 666);
        dict.insert_validated(Asn::new(64_888), c2);
        let mut session = InferenceSession::new(Arc::new(dict), s.refdata.clone());
        session.push(&announce("9.9.9.9/32", 100, "100 64999", vec![s.community, c2], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers.len(), 2);
    }

    #[test]
    fn ingest_equals_push_loop() {
        let s = setup();
        let elems = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
            announce("8.8.8.8/32", 200, "100 64777 64999", vec![s.community], 100),
        ];
        let mut by_push = s.session();
        for e in &elems {
            by_push.push(e);
        }
        let mut by_ingest = s.session();
        assert_eq!(by_ingest.ingest(&mut SliceSource::new(&elems)), 3);
        assert_eq!(by_push.finish(), by_ingest.finish());
    }

    #[test]
    fn merged_multi_collector_ingest_equals_materialized_merge() {
        use bh_routing::{merge_streams, MergedSource};

        let s = setup();
        // Two collector streams, interleaved in time.
        let mut ris = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 300, 100),
        ];
        ris[0].collector = 0;
        ris[1].collector = 0;
        let mut rv = vec![
            announce("9.9.9.9/32", 200, "200 64777 64999", vec![s.community], 200),
            withdraw("9.9.9.9/32", 400, 200),
        ];
        for e in &mut rv {
            e.dataset = DataSource::RouteViews;
            e.collector = 1;
        }

        let mut by_push = s.session();
        for e in merge_streams(vec![ris.clone(), rv.clone()]) {
            by_push.push(&e);
        }

        let mut by_merge = s.session();
        let merged = &mut MergedSource::new(vec![SliceSource::new(&ris), SliceSource::new(&rv)]);
        assert_eq!(by_merge.ingest(merged), 4);
        assert_eq!(by_merge.finish(), by_push.finish());
    }

    #[test]
    fn drain_closed_hands_out_events_mid_stream() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let drained = session.drain_closed();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].end, Some(SimTime::from_unix(160)));
        // Drained events do not reappear.
        assert!(session.drain_closed().is_empty());
        session.push(&announce("8.8.8.8/32", 200, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].prefix, "8.8.8.8/32".parse().unwrap());
        // Stats keep covering the whole stream.
        assert_eq!(result.stats.elems, 3);
    }

    #[test]
    fn checkpoint_resume_continues_exactly() {
        let s = setup();
        let elems = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            announce("8.8.8.8/32", 120, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
            withdraw("8.8.8.8/32", 180, 100),
        ];
        // One shot.
        let mut oneshot = s.session();
        for e in &elems {
            oneshot.push(e);
        }
        let expected = oneshot.finish();

        // Suspend after two elements, resume in a fresh session.
        let mut first = s.session();
        first.push(&elems[0]);
        first.push(&elems[1]);
        let checkpoint = first.checkpoint();
        assert_eq!(checkpoint.open_events(), 2);
        assert_eq!(checkpoint.pending_closed(), 0);
        drop(first);
        let mut resumed = s.builder().resume(checkpoint);
        resumed.push(&elems[2]);
        resumed.push(&elems[3]);
        assert_eq!(resumed.finish(), expected);
    }

    #[test]
    fn resume_keeps_the_checkpointed_configuration() {
        // An ablated (collapsed-peer) session checkpointed mid-stream
        // must resume with the same semantics even if the resuming
        // builder was left at defaults — otherwise real-peer withdrawals
        // could never match the collapsed PeerKey and events would
        // stay open forever.
        let s = setup();
        let mut ablated = s.builder().per_peer_state(false).build();
        ablated.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        ablated.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        let checkpoint = ablated.checkpoint();
        // Resume from a default-config builder: checkpoint config wins.
        let mut resumed = s.builder().resume(checkpoint);
        resumed.push(&withdraw("9.9.9.9/32", 150, 100));
        let result = resumed.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(150)));
    }

    #[test]
    fn result_merge_equals_one_session_over_prefix_disjoint_streams() {
        let s = setup();
        // Two prefix-disjoint streams (the shard-partition property).
        let elems_a = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
        ];
        let elems_b = vec![announce("8.8.8.8/32", 120, "100 64777 64999", vec![s.community], 100)];

        let mut combined = s.session();
        for e in elems_a.iter().chain(&elems_b) {
            combined.push(e);
        }
        let expected = combined.finish();

        let mut session_a = s.session();
        for e in &elems_a {
            session_a.push(e);
        }
        let mut merged = session_a.finish();
        let mut session_b = s.session();
        for e in &elems_b {
            session_b.push(e);
        }
        merged.merge(session_b.finish());
        assert_eq!(merged, expected);
    }

    #[test]
    fn checkpoint_carries_undrained_closed_events() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let checkpoint = session.checkpoint();
        assert_eq!(checkpoint.pending_closed(), 1);
        let resumed = s.builder().resume(checkpoint);
        assert_eq!(resumed.finish().events.len(), 1);
    }
}
