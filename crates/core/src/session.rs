//! Streaming inference sessions — §4.2 of the paper as an *online*
//! algorithm.
//!
//! The methodology, faithfully:
//!
//! * dictionary-driven tagging of announcements,
//! * disambiguation of shared communities via the AS path,
//! * IXP detection via route-server ASN on the path *or* peer-ip inside a
//!   PeeringDB peering LAN,
//! * blackholing-user inference (the AS-hop before the provider, after
//!   prepending removal; the peer-as for route-server views; the origin
//!   for bundled detections),
//! * per-(prefix, peer) state with explicit *and* implicit withdrawals,
//! * cross-peer correlation into prefix-level events,
//! * initialization from a RIB dump with "starting time zero",
//! * a community/prefix-length census feeding the extended-dictionary
//!   inference (Fig. 2).
//!
//! The API shape: a [`SessionBuilder`] assembles an owned
//! [`InferenceSession`] (dictionary and reference data behind [`Arc`], so
//! sessions are `Send` and outlive no borrow). Elements arrive one at a
//! time via [`InferenceSession::push`] — or from any
//! [`ElemSource`] via [`InferenceSession::ingest`], including a
//! [`MergedSource`](bh_routing::MergedSource) or a parallel
//! [`CollectorFleet`](bh_routing::CollectorFleet) stream merging a whole
//! multi-collector archive set — and finished events can be handed to
//! consumers mid-stream with [`InferenceSession::drain_closed`].
//! [`InferenceSession::checkpoint`] snapshots the mutable state so a
//! long-running scan can be suspended and resumed
//! ([`SessionBuilder::resume`]) — including mid-fleet, since the fleet
//! stream is just another source.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;
use std::sync::Arc;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::bogon::BogonFilter;
use bh_bgp_types::community::Community;
use bh_bgp_types::hash::{FxHashMap, FxHashSet};
use bh_bgp_types::intern::{CommunitySetId, CommunitySetTable, PathId, PathTable};
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_irr::{BlackholeDictionary, CommunityPrefixCensus, NegativeControls};
use bh_routing::{BgpElem, DataSource, ElemSource, ElemType, PeerKey};

use crate::accumulate::{EventAccumulator, EventCollector};
use crate::events::{BlackholeEvent, DetectionDistance, ProviderId};
use crate::refdata::ReferenceData;
use crate::shard::ShardedSession;

/// One provider detection extracted from a single announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The inferred provider.
    pub provider: ProviderId,
    /// The inferred blackholing user.
    pub user: Option<Asn>,
    /// Collector-to-provider distance (Fig. 7(c)).
    pub distance: DetectionDistance,
    /// The triggering community.
    pub community: Community,
}

/// Counters for session behavior (useful for pipeline benchmarking and
/// methodology diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Elements processed.
    pub elems: u64,
    /// Announcements carrying at least one dictionary community.
    pub tagged_announcements: u64,
    /// Announcements dropped by data cleaning (bogons).
    pub cleaned: u64,
    /// Detections discarded because an ambiguous community had no
    /// candidate provider on the AS path.
    pub ambiguous_unresolved: u64,
    /// Implicit withdrawals observed (re-announcement without tags).
    pub implicit_withdrawals: u64,
    /// Explicit withdrawals that ended a peer observation.
    pub explicit_withdrawals: u64,
    /// Detections that relied on community bundling (no provider on path).
    pub bundled_detections: u64,
    /// Announcements whose every dictionary-matched community was a
    /// negative control (classified location/informational) — the
    /// candidate event was suppressed instead of opened.
    pub control_suppressed: u64,
}

impl EngineStats {
    /// Fold another session's counters into this one (shard merging).
    pub fn merge(&mut self, other: EngineStats) {
        self.elems += other.elems;
        self.tagged_announcements += other.tagged_announcements;
        self.cleaned += other.cleaned;
        self.ambiguous_unresolved += other.ambiguous_unresolved;
        self.implicit_withdrawals += other.implicit_withdrawals;
        self.explicit_withdrawals += other.explicit_withdrawals;
        self.bundled_detections += other.bundled_detections;
        self.control_suppressed += other.control_suppressed;
    }
}

/// Per-dataset visibility accumulators (Table 3 inputs).
///
/// Hash-backed sets: one membership insert runs per *tagged
/// announcement* (the prefix set grows to every blackholed prefix of
/// the stream), and every consumer is order-insensitive — Table 3 only
/// counts, differences, and unions them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetVisibility {
    /// Providers observed via this platform.
    pub providers: FxHashSet<ProviderId>,
    /// Users observed via this platform.
    pub users: FxHashSet<Asn>,
    /// Prefixes observed via this platform.
    pub prefixes: FxHashSet<Ipv4Prefix>,
}

impl DatasetVisibility {
    /// Union another accumulator into this one (shard merging).
    pub fn merge(&mut self, other: &DatasetVisibility) {
        self.providers.extend(other.providers.iter().copied());
        self.users.extend(other.users.iter().copied());
        self.prefixes.extend(other.prefixes.iter().copied());
    }
}

#[derive(Debug, Clone, Default)]
struct OpenEvent {
    providers: BTreeSet<ProviderId>,
    users: BTreeSet<Asn>,
    start: SimTime,
    open_peers: BTreeSet<PeerKey>,
    all_peers: BTreeSet<PeerKey>,
    datasets: BTreeSet<DataSource>,
    distances: BTreeSet<DetectionDistance>,
    bundled: bool,
}

/// Configuration toggles — the ablation switches called out in DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Detect via community bundling when the provider is absent from the
    /// path (§4.2; disabling this is the Fig. 7(c) ablation — the paper
    /// credits bundling with ~half of all inferences).
    pub bundling_detection: bool,
    /// Track state per (prefix, peer) and correlate (the paper's method).
    /// Disabled, state collapses to per-prefix only — the Fig. 8
    /// ablation showing why per-peer tracking matters.
    pub per_peer_state: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { bundling_detection: true, per_peer_state: true }
    }
}

/// Detection distance per the paper's 1-indexed convention, saturating
/// rather than wrapping on pathological (>254-hop) paths.
fn detection_hops(distance_from_peer: usize) -> DetectionDistance {
    DetectionDistance::Hops(u8::try_from(distance_from_peer.saturating_add(1)).unwrap_or(u8::MAX))
}

/// Builds [`InferenceSession`]s (and their sharded parallel variant).
///
/// The dictionary and reference data travel behind [`Arc`]: one snapshot
/// is shared by every session and shard worker, with no lifetime tie
/// between the session and its inputs.
#[derive(Clone)]
pub struct SessionBuilder {
    pub(crate) dict: Arc<BlackholeDictionary>,
    pub(crate) refdata: Arc<ReferenceData>,
    pub(crate) config: EngineConfig,
    pub(crate) controls: Option<Arc<NegativeControls>>,
}

impl SessionBuilder {
    /// Start from a dictionary and reference-data snapshot.
    pub fn new(dict: Arc<BlackholeDictionary>, refdata: Arc<ReferenceData>) -> Self {
        SessionBuilder { dict, refdata, config: EngineConfig::default(), controls: None }
    }

    /// Install a negative-control set: classic communities the classifier
    /// deemed location/informational are dropped from detection plans, so
    /// an announcement whose *only* dictionary-matched communities are
    /// controls opens no candidate event (counted in
    /// [`EngineStats::control_suppressed`]). Like the dictionary, controls
    /// travel on the builder — they are not part of a checkpoint. The
    /// default (no controls) leaves the session byte-identical to the
    /// pre-classifier behavior.
    pub fn negative_controls(mut self, controls: Arc<NegativeControls>) -> Self {
        self.controls = Some(controls);
        self
    }

    /// Replace the whole configuration (ablations).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggle bundling detection (Fig. 7(c) ablation).
    pub fn bundling_detection(mut self, on: bool) -> Self {
        self.config.bundling_detection = on;
        self
    }

    /// Toggle per-(prefix, peer) state tracking (Fig. 8 ablation).
    pub fn per_peer_state(mut self, on: bool) -> Self {
        self.config.per_peer_state = on;
        self
    }

    /// Build a fresh single-threaded session.
    pub fn build(self) -> InferenceSession {
        InferenceSession {
            dict: self.dict,
            refdata: self.refdata,
            config: self.config,
            controls: self.controls,
            bogons: BogonFilter::new(),
            state: SessionState::default(),
        }
    }

    /// Build a session that resumes from a [`SessionCheckpoint`].
    ///
    /// The checkpoint's configuration wins over the builder's: the
    /// resumed session continues the stream under exactly the semantics
    /// the snapshotted state was built with (mixing per-peer modes
    /// mid-stream would strand open events).
    pub fn resume(self, checkpoint: SessionCheckpoint) -> InferenceSession {
        let mut session = self.config(checkpoint.config).build();
        session.state = checkpoint.state;
        session
    }

    /// Build a [`ShardedSession`] that hash-partitions the element
    /// stream by prefix across `shards` worker threads.
    pub fn build_sharded(self, shards: usize) -> ShardedSession {
        ShardedSession::spawn(self, shards, EventCollector::default())
    }

    /// Build a sharded session whose workers stream their closed events
    /// through a clone of `accumulator` as they go — inline analytics
    /// with no per-shard event `Vec`. The per-shard accumulators are
    /// merged deterministically at the
    /// [`finish_parts`](ShardedSession::finish_parts) barrier.
    pub fn build_sharded_with<A>(self, shards: usize, accumulator: A) -> ShardedSession<A>
    where
        A: EventAccumulator + Clone + Send + 'static,
    {
        ShardedSession::spawn(self, shards, accumulator)
    }
}

/// The mutable inference state — everything a checkpoint must capture.
#[derive(Debug, Clone, Default)]
struct SessionState {
    census: CommunityPrefixCensus,
    open: FxHashMap<Ipv4Prefix, OpenEvent>,
    closed: Vec<BlackholeEvent>,
    per_dataset: BTreeMap<DataSource, DatasetVisibility>,
    stats: EngineStats,
    // Intern tables: every distinct AS path / community set observed
    // collapses to one Arc-shared canonical handle, so the per-path
    // deprepend and content-hash memos are computed once per *distinct*
    // value rather than once per announcement.
    paths: PathTable,
    community_sets: CommunitySetTable,
    // Per-interned-set detection plan, indexed by `CommunitySetId`: the
    // set's communities (classic, plus the large-community display
    // forms) that have dictionary candidates. Dictionary probes run once
    // per *distinct* set; the overwhelmingly common untagged set gets an
    // empty plan and `detect` returns without touching the path.
    plans: Vec<DetectionPlan>,
    // Parallel to `plans`: true when the set *would* have had dictionary
    // candidates but every one was dropped by the negative controls —
    // announcements hitting such a set are counted as suppressed.
    plan_suppressed: Vec<bool>,
    // Census tallies deferred per (set, length-bucket): one counter
    // bump per announcement here, replayed in bulk into the BTree-backed
    // census whenever it is actually read. Replay is commutative, so
    // flush order (and sharding) cannot perturb the result.
    census_pending: FxHashMap<(CommunitySetId, u8), u64>,
    // Memoized §4.2 detection outcomes. Detection is a pure function of
    // (community set, AS path, peer) under the session's fixed
    // dictionary and reference data, and real streams repeat the same
    // combination constantly (every prefix of an update shares one
    // attribute block; peers re-announce). The key is two interned ids
    // plus the peer identity; the outcome carries the detections *and*
    // the counter deltas so stats stay per-announcement exact on hits.
    detections: FxHashMap<DetectionKey, Arc<DetectionOutcome>>,
}

/// Memo key for one (community set, AS path, peer) combination.
type DetectionKey = (CommunitySetId, PathId, IpAddr, Asn);

/// A memoized detection result: what `detect` found for one key, plus
/// the per-call stats increments to replay on every cache hit.
#[derive(Debug, Clone, Default)]
struct DetectionOutcome {
    detections: Vec<Detection>,
    ambiguous: u64,
    bundled: u64,
}

/// The dictionary candidates for one interned community set: every
/// community of the set (large ones via their display form) whose
/// candidate-provider list is non-empty. Shared behind `Arc` so `detect`
/// can hold the plan while mutating session state.
type DetectionPlan = Arc<[(Community, Box<[Asn]>)]>;

/// Build the detection plan for a community set (once per distinct set).
/// Returns the plan plus whether any classic candidate was dropped by the
/// negative controls. RFC 8092 large-community triggers are always
/// provider-documented and never filtered.
fn build_plan(
    dict: &BlackholeDictionary,
    set: &bh_bgp_types::community::CommunitySet,
    controls: Option<&NegativeControls>,
) -> (DetectionPlan, bool) {
    let mut entries = Vec::new();
    let mut filtered = false;
    for community in set.iter() {
        let candidates = dict.providers_for(community);
        if candidates.is_empty() {
            continue;
        }
        if controls.is_some_and(|ctl| ctl.contains(community)) {
            filtered = true;
            continue;
        }
        entries.push((community, candidates.into_boxed_slice()));
    }
    for large in set.iter_large() {
        let candidates = dict.providers_for_large(large);
        if !candidates.is_empty() {
            // Attribute large-community detections to a synthetic classic
            // community for uniform bookkeeping (high half of the global
            // admin, value 666 — purely presentational).
            let display = Community::from_parts((large.global_admin & 0xFFFF) as u16, 666);
            entries.push((display, candidates.into_boxed_slice()));
        }
    }
    let suppressed = filtered && entries.is_empty();
    (entries.into(), suppressed)
}

impl SessionState {
    /// Replay the deferred (set, length) census tallies into the
    /// BTree-backed census. Replay is commutative, so the drain order of
    /// the pending map cannot perturb the result.
    fn flush_census(&mut self) {
        for ((set_id, length), count) in self.census_pending.drain() {
            let communities: Vec<Community> = self.community_sets.resolve(set_id).iter().collect();
            self.census.record_repeated(&communities, length, count);
        }
    }
}

/// An opaque snapshot of a session's mutable state.
///
/// Produced by [`InferenceSession::checkpoint`]; a new session picks it
/// up via [`SessionBuilder::resume`] and continues the stream exactly
/// where the original left off — including the original's
/// configuration, which travels with the snapshot. Closed events not
/// yet handed out by [`InferenceSession::drain_closed`] travel with the
/// checkpoint too.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    state: SessionState,
    config: EngineConfig,
}

impl SessionCheckpoint {
    /// Events still open (active) at snapshot time.
    pub fn open_events(&self) -> usize {
        self.state.open.len()
    }

    /// Closed events captured in the snapshot (not yet drained).
    pub fn pending_closed(&self) -> usize {
        self.state.closed.len()
    }
}

/// The streaming inference session — the owned replacement for the old
/// borrowed `InferenceEngine<'a>`.
pub struct InferenceSession {
    dict: Arc<BlackholeDictionary>,
    refdata: Arc<ReferenceData>,
    config: EngineConfig,
    controls: Option<Arc<NegativeControls>>,
    bogons: BogonFilter,
    state: SessionState,
}

impl InferenceSession {
    /// Shorthand for `SessionBuilder::new(dict, refdata).build()`.
    pub fn new(dict: Arc<BlackholeDictionary>, refdata: Arc<ReferenceData>) -> Self {
        SessionBuilder::new(dict, refdata).build()
    }

    /// Session statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.state.stats
    }

    /// The community/prefix-length census (Fig. 2, extended dictionary).
    ///
    /// Takes `&mut self`: per-announcement tallies are deferred into a
    /// (set, length) counter and replayed into the census on read.
    pub fn census(&mut self) -> &CommunityPrefixCensus {
        self.state.flush_census();
        &self.state.census
    }

    /// Per-dataset visibility accumulators.
    pub fn dataset_visibility(&self) -> &BTreeMap<DataSource, DatasetVisibility> {
        &self.state.per_dataset
    }

    /// Events currently open (active, not yet ended).
    pub fn open_event_count(&self) -> usize {
        self.state.open.len()
    }

    /// The interned AS paths observed so far (one entry per distinct
    /// path; every repeat shares its allocation).
    pub fn interned_paths(&self) -> &PathTable {
        &self.state.paths
    }

    /// The interned community sets observed so far.
    pub fn interned_community_sets(&self) -> &CommunitySetTable {
        &self.state.community_sets
    }

    /// Initialize from a RIB dump: tagged prefixes present in the table
    /// start with time zero ("we cannot accurately pinpoint the start
    /// time … we use an initial starting time of zero").
    pub fn initialize_from_rib(&mut self, state: &[BgpElem]) {
        for elem in state {
            self.push_rib(elem);
        }
    }

    /// Push one RIB-dump entry (start time zero); the streaming sibling
    /// of [`InferenceSession::initialize_from_rib`].
    pub fn push_rib(&mut self, elem: &BgpElem) {
        if elem.elem_type == ElemType::Announce {
            self.process_announce(elem, SimTime::ZERO);
        }
    }

    /// Process one element in arrival order.
    pub fn push(&mut self, elem: &BgpElem) {
        match elem.elem_type {
            ElemType::Announce => self.process_announce(elem, elem.time),
            ElemType::Withdraw => self.process_withdraw(elem),
        }
    }

    /// Drain every element of a source, in order; returns how many were
    /// processed. Constant memory for streaming sources.
    pub fn ingest<S: ElemSource + ?Sized>(&mut self, source: &mut S) -> u64 {
        let mut n = 0;
        while let Some(elem) = source.next_elem() {
            self.push(elem);
            n += 1;
        }
        n
    }

    /// Hand out the events closed so far and forget them; the mid-stream
    /// consumer API. The union of everything drained plus the events of
    /// the final [`InferenceSession::finish`] equals exactly what one
    /// batch run would have produced.
    pub fn drain_closed(&mut self) -> Vec<BlackholeEvent> {
        std::mem::take(&mut self.state.closed)
    }

    /// Stream the events closed so far into an accumulator and forget
    /// them; returns how many were folded in. The constant-memory
    /// sibling of [`InferenceSession::drain_closed`]: nothing is handed
    /// out, so no event `Vec` ever accumulates.
    pub fn drain_closed_into<A: EventAccumulator>(&mut self, accumulator: &mut A) -> usize {
        let n = self.state.closed.len();
        for event in self.state.closed.drain(..) {
            accumulator.observe_owned(event);
        }
        n
    }

    /// Snapshot the mutable state (and configuration) for later
    /// [`SessionBuilder::resume`].
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint { state: self.state.clone(), config: self.config }
    }

    /// Finish: close nothing (events still active stay open with
    /// `end: None`) and return every remaining event plus final census
    /// and stats. Thin wrapper over
    /// [`InferenceSession::finish_with`] and an [`EventCollector`].
    pub fn finish(self) -> InferenceResult {
        let mut collector = EventCollector::default();
        let summary = self.finish_with(&mut collector);
        InferenceResult {
            events: collector.finalize(),
            census: summary.census,
            stats: summary.stats,
            per_dataset: summary.per_dataset,
        }
    }

    /// Finish by streaming every remaining event (undrained closed ones
    /// first, then the still-open ones with `end: None`) into an
    /// accumulator, plus the final per-dataset visibility via
    /// [`EventAccumulator::observe_visibility`]. Returns the summary
    /// outputs (census, counters, visibility); the full event `Vec` is
    /// never materialized.
    pub fn finish_with<A: EventAccumulator>(mut self, accumulator: &mut A) -> StreamSummary {
        self.state.flush_census();
        self.drain_closed_into(accumulator);
        let open: Vec<Ipv4Prefix> = self.state.open.keys().copied().collect();
        for prefix in open {
            let oe = self.state.open.remove(&prefix).expect("key exists");
            accumulator.observe_owned(Self::to_event(prefix, oe, None));
        }
        accumulator.observe_visibility(&self.state.per_dataset);
        StreamSummary {
            census: self.state.census,
            stats: self.state.stats,
            per_dataset: self.state.per_dataset,
            paths: self.state.paths,
            community_sets: self.state.community_sets,
        }
    }

    // ---- internals -------------------------------------------------------

    fn to_event(prefix: Ipv4Prefix, oe: OpenEvent, end: Option<SimTime>) -> BlackholeEvent {
        BlackholeEvent {
            prefix,
            providers: oe.providers,
            users: oe.users,
            start: oe.start,
            end,
            peer_count: oe.all_peers.len(),
            datasets: oe.datasets,
            distances: oe.distances,
            bundled_detection: oe.bundled,
        }
    }

    /// The §4.2 detection procedure for one announcement.
    pub fn detect(&mut self, elem: &BgpElem) -> Vec<Detection> {
        let (set_id, plan) = self.plan_for(elem);
        match self.detect_planned(elem, set_id, plan) {
            Some(outcome) => outcome.detections.clone(),
            None => Vec::new(),
        }
    }

    /// The detection plan for this element's community set, built on the
    /// set's first appearance and cached under its interned id.
    fn plan_for(&mut self, elem: &BgpElem) -> (CommunitySetId, DetectionPlan) {
        let set_id = self.state.community_sets.intern(&elem.communities);
        let idx = set_id.0 as usize;
        if idx == self.state.plans.len() {
            let (plan, suppressed) =
                build_plan(&self.dict, &elem.communities, self.controls.as_deref());
            self.state.plans.push(plan);
            self.state.plan_suppressed.push(suppressed);
        }
        (set_id, self.state.plans[idx].clone())
    }

    /// Detection with the element's plan already resolved. Returns the
    /// memoized outcome for this (set, path, peer) key — computing it on
    /// first sight — or `None` when the plan is empty (nothing tagged).
    fn detect_planned(
        &mut self,
        elem: &BgpElem,
        set_id: CommunitySetId,
        plan: DetectionPlan,
    ) -> Option<Arc<DetectionOutcome>> {
        // Intern the path: repeats of the same path (the common case —
        // one announcement per prefix per path) resolve to one canonical
        // Arc, so the deprepend below is memoized across the stream.
        let path_id = self.state.paths.intern(&elem.as_path);
        // The hot exit: no community of this set is in the dictionary,
        // so there is nothing to detect and no path work to do.
        if plan.is_empty() {
            return None;
        }
        let key: DetectionKey = (set_id, path_id, elem.peer_ip, elem.peer_asn);
        if let Some(outcome) = self.state.detections.get(&key) {
            let outcome = Arc::clone(outcome);
            self.state.stats.bundled_detections += outcome.bundled;
            self.state.stats.ambiguous_unresolved += outcome.ambiguous;
            return Some(outcome);
        }

        let mut outcome = DetectionOutcome::default();
        let path = self.state.paths.resolve(path_id).clone().without_prepending();
        let refdata = Arc::clone(&self.refdata);
        let bundling = self.config.bundling_detection;

        let mut consider = |community: Community, candidates: &[Asn]| {
            if candidates.is_empty() {
                return;
            }
            let unambiguous = candidates.len() == 1;
            let mut resolved_any = false;
            for &candidate in candidates {
                if let Some(ixp) = refdata.ixp_of_route_server(candidate) {
                    // IXP provider: route-server ASN on path, or peer-ip
                    // inside the IXP's peering LAN.
                    if path.contains(candidate) {
                        let user = path.hop_before(candidate);
                        let distance = if refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp) {
                            DetectionDistance::Hops(0)
                        } else {
                            detection_hops(path.distance_from_peer(candidate).unwrap_or(0))
                        };
                        outcome.detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user,
                            distance,
                            community,
                        });
                        resolved_any = true;
                    } else if refdata.ixp_of_peer_ip(elem.peer_ip) == Some(ixp) {
                        outcome.detections.push(Detection {
                            provider: ProviderId::Ixp(ixp),
                            user: Some(elem.peer_asn),
                            distance: DetectionDistance::Hops(0),
                            community,
                        });
                        resolved_any = true;
                    }
                } else if path.contains(candidate) {
                    // The hop before the provider — skipping route-server
                    // ASNs, which appear on paths when a provider learned
                    // the route across an IXP (the RS is not the user).
                    let mut rest = path.iter_asns().skip_while(|&a| a != candidate);
                    rest.next(); // the provider hop itself
                    let user = rest
                        .find(|&a| refdata.ixp_of_route_server(a).is_none())
                        .or(Some(candidate));
                    outcome.detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user,
                        distance: detection_hops(path.distance_from_peer(candidate).unwrap_or(0)),
                        community,
                    });
                    resolved_any = true;
                } else if unambiguous && bundling {
                    // Bundled community: the provider never propagated the
                    // route, but the unambiguous tag identifies it.
                    outcome.detections.push(Detection {
                        provider: ProviderId::As(candidate),
                        user: path.origin(),
                        distance: DetectionDistance::NoPath,
                        community,
                    });
                    outcome.bundled += 1;
                    resolved_any = true;
                }
            }
            if !resolved_any {
                outcome.ambiguous += 1;
            }
        };

        for (community, candidates) in plan.iter() {
            consider(*community, candidates);
        }

        outcome.detections.sort_by_key(|d| d.provider);
        outcome.detections.dedup_by_key(|d| d.provider);
        self.state.stats.bundled_detections += outcome.bundled;
        self.state.stats.ambiguous_unresolved += outcome.ambiguous;
        let outcome = Arc::new(outcome);
        self.state.detections.insert(key, Arc::clone(&outcome));
        Some(outcome)
    }

    fn process_announce(&mut self, elem: &BgpElem, start_time: SimTime) {
        self.state.stats.elems += 1;
        // Data cleaning (§3): bogons and <-/8 never considered.
        if !self.bogons.is_routable(&elem.prefix) {
            self.state.stats.cleaned += 1;
            return;
        }
        // Census of every community on every announcement (Fig. 2
        // input), deferred as one (set, length-bucket) counter bump.
        // Interning the set (O(1) on repeats via the memoized content
        // hash) keys both the tally and the cached detection plan.
        let (set_id, plan) = self.plan_for(elem);
        *self.state.census_pending.entry((set_id, elem.prefix.length())).or_insert(0) += 1;
        if self.state.plan_suppressed[set_id.0 as usize] {
            // Every dictionary match was a negative control: no candidate
            // event. The announcement still falls through to the
            // implicit-withdrawal logic below, exactly like an untagged one.
            self.state.stats.control_suppressed += 1;
        }

        let detections = self.detect_planned(elem, set_id, plan);
        let detections: &[Detection] =
            detections.as_ref().map(|o| o.detections.as_slice()).unwrap_or(&[]);
        let peer = elem.peer_key();

        if detections.is_empty() {
            // Implicit withdrawal: previously blackholed at this peer,
            // now announced without tags (§4.2).
            if let Some(oe) = self.state.open.get_mut(&elem.prefix) {
                if oe.open_peers.remove(&peer) {
                    self.state.stats.implicit_withdrawals += 1;
                    if oe.open_peers.is_empty() {
                        let oe = self.state.open.remove(&elem.prefix).expect("open event exists");
                        self.state.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                    }
                }
            }
            return;
        }
        self.state.stats.tagged_announcements += 1;

        let oe = self
            .state
            .open
            .entry(elem.prefix)
            .or_insert_with(|| OpenEvent { start: start_time, ..Default::default() });
        if self.config.per_peer_state {
            oe.open_peers.insert(peer);
        } else {
            // Ablation: single logical peer — de-activations seen by any
            // peer close the event.
            oe.open_peers.insert(PeerKey {
                dataset: peer.dataset,
                collector: 0,
                peer_asn: Asn::new(0),
            });
        }
        oe.all_peers.insert(peer);
        oe.datasets.insert(elem.dataset);
        let vis = self.state.per_dataset.entry(elem.dataset).or_default();
        vis.prefixes.insert(elem.prefix);
        for d in detections {
            oe.providers.insert(d.provider);
            oe.distances.insert(d.distance);
            if d.distance == DetectionDistance::NoPath {
                oe.bundled = true;
            }
            if let Some(user) = d.user {
                oe.users.insert(user);
                vis.users.insert(user);
            }
            vis.providers.insert(d.provider);
        }
    }

    fn process_withdraw(&mut self, elem: &BgpElem) {
        self.state.stats.elems += 1;
        let peer = if self.config.per_peer_state {
            elem.peer_key()
        } else {
            PeerKey { dataset: elem.dataset, collector: 0, peer_asn: Asn::new(0) }
        };
        if let Some(oe) = self.state.open.get_mut(&elem.prefix) {
            if oe.open_peers.remove(&peer) {
                self.state.stats.explicit_withdrawals += 1;
                if oe.open_peers.is_empty() {
                    let oe = self.state.open.remove(&elem.prefix).expect("open event exists");
                    self.state.closed.push(Self::to_event(elem.prefix, oe, Some(elem.time)));
                }
            }
        }
    }
}

/// The non-event outputs of a session: what
/// [`InferenceSession::finish_with`] returns when the events themselves
/// streamed into an accumulator instead of materializing.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The community/prefix-length census.
    pub census: CommunityPrefixCensus,
    /// Session counters.
    pub stats: EngineStats,
    /// Per-dataset visibility (Table 3 inputs).
    pub per_dataset: BTreeMap<DataSource, DatasetVisibility>,
    /// Every distinct AS path the session observed, interned. Compares
    /// as a *set* (id assignment order is a sharding artifact).
    pub paths: PathTable,
    /// Every distinct community set the session observed, interned.
    pub community_sets: CommunitySetTable,
}

impl StreamSummary {
    /// An empty summary (the merge identity).
    pub fn empty() -> Self {
        StreamSummary {
            census: CommunityPrefixCensus::new(),
            stats: EngineStats::default(),
            per_dataset: BTreeMap::new(),
            paths: PathTable::new(),
            community_sets: CommunitySetTable::new(),
        }
    }

    /// Fold another summary in: census/stats/visibility all merge
    /// commutatively (the shard barrier's summary half), and the intern
    /// tables absorb the other side's values — ids already handed out by
    /// `self` stay stable, new values get fresh ids.
    pub fn merge(&mut self, other: StreamSummary) {
        self.census.merge(&other.census);
        self.stats.merge(other.stats);
        for (dataset, vis) in &other.per_dataset {
            self.per_dataset.entry(*dataset).or_default().merge(vis);
        }
        self.paths.absorb(&other.paths);
        self.community_sets.absorb(&other.community_sets);
    }
}

/// Everything a session produced.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// All inferred events (closed ones have `end: Some(_)`).
    pub events: Vec<BlackholeEvent>,
    /// The community/prefix-length census.
    pub census: CommunityPrefixCensus,
    /// Session counters.
    pub stats: EngineStats,
    /// Per-dataset visibility (Table 3 inputs).
    pub per_dataset: BTreeMap<DataSource, DatasetVisibility>,
}

impl InferenceResult {
    /// Fold another result into this one: events concatenate and
    /// re-sort canonically via the [`EventCollector`], the summary
    /// halves merge commutatively via [`StreamSummary::merge`] — so
    /// shard-merge semantics live in exactly one place each.
    pub fn merge(&mut self, other: InferenceResult) {
        let mut collector = EventCollector::default();
        for event in std::mem::take(&mut self.events) {
            collector.observe_owned(event);
        }
        for event in other.events {
            collector.observe_owned(event);
        }
        let mut summary = StreamSummary {
            census: std::mem::take(&mut self.census),
            stats: self.stats,
            per_dataset: std::mem::take(&mut self.per_dataset),
            ..StreamSummary::empty()
        };
        summary.merge(StreamSummary {
            census: other.census,
            stats: other.stats,
            per_dataset: other.per_dataset,
            ..StreamSummary::empty()
        });
        self.events = collector.finalize();
        self.census = summary.census;
        self.stats = summary.stats;
        self.per_dataset = summary.per_dataset;
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::as_path::AsPath;
    use bh_bgp_types::community::CommunitySet;
    use bh_routing::{deploy, CollectorConfig, SliceSource};
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    struct Setup {
        dict: Arc<BlackholeDictionary>,
        refdata: Arc<ReferenceData>,
        provider: Asn,
        community: Community,
    }

    fn setup() -> Setup {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let mut dict = BlackholeDictionary::default();
        let provider = Asn::new(64_777); // not in the topology: pure unit test
        let community = Community::from_parts(777, 666);
        dict.insert_validated(provider, community);
        Setup { dict: Arc::new(dict), refdata, provider, community }
    }

    impl Setup {
        fn session(&self) -> InferenceSession {
            InferenceSession::new(self.dict.clone(), self.refdata.clone())
        }

        fn builder(&self) -> SessionBuilder {
            SessionBuilder::new(self.dict.clone(), self.refdata.clone())
        }
    }

    fn announce(
        prefix: &str,
        time: u64,
        path: &str,
        communities: Vec<Community>,
        peer: u32,
    ) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Announce,
            prefix: prefix.parse().unwrap(),
            as_path: path.parse().unwrap(),
            communities: CommunitySet::from_classic(communities),
            next_hop: None,
        }
    }

    fn withdraw(prefix: &str, time: u64, peer: u32) -> BgpElem {
        BgpElem {
            time: SimTime::from_unix(time),
            dataset: DataSource::Ris,
            collector: 0,
            peer_asn: Asn::new(peer),
            peer_ip: "198.51.100.7".parse().unwrap(),
            elem_type: ElemType::Withdraw,
            prefix: prefix.parse().unwrap(),
            as_path: AsPath::empty(),
            communities: CommunitySet::new(),
            next_hop: None,
        }
    }

    #[test]
    fn negative_controls_suppress_control_only_announcements() {
        let s = setup();
        // A stolen tag that a naive dictionary mislabeled as a trigger.
        let tag = Community::from_parts(888, 100);
        let mut dict = (*s.dict).clone();
        dict.insert_validated(Asn::new(64_888), tag);
        let dict = Arc::new(dict);
        let mut controls = NegativeControls::default();
        controls.insert(tag);
        let controls = Arc::new(controls);

        let tag_only = announce("130.149.1.66/32", 10, "100 64888 200", vec![tag], 100);
        let genuine = announce("130.149.2.66/32", 11, "100 64777 200", vec![s.community], 100);
        let both = announce("130.149.3.66/32", 12, "100 64777 200", vec![s.community, tag], 100);

        // Without controls the stolen tag opens a (false) event.
        let mut naive = SessionBuilder::new(dict.clone(), s.refdata.clone()).build();
        naive.push(&tag_only);
        assert_eq!(naive.open_event_count(), 1);
        assert_eq!(naive.stats().control_suppressed, 0);

        // With controls it is suppressed; genuine triggers still detect,
        // even when the control rides along on the same announcement.
        let mut session =
            SessionBuilder::new(dict, s.refdata.clone()).negative_controls(controls).build();
        session.push(&tag_only);
        session.push(&genuine);
        session.push(&both);
        assert_eq!(session.open_event_count(), 2);
        let stats = session.stats();
        assert_eq!(stats.control_suppressed, 1);
        assert_eq!(stats.tagged_announcements, 2);
        let result = session.finish();
        assert!(result.events.iter().all(|e| e.providers.contains(&ProviderId::As(s.provider))));
    }

    #[test]
    fn absent_controls_and_empty_controls_are_identical() {
        let s = setup();
        let stream = vec![
            announce("130.149.1.66/32", 10, "100 64777 200", vec![s.community], 100),
            announce("130.149.1.66/32", 50, "100 64777 200", vec![], 100),
            announce("130.149.2.66/32", 60, "100 300 200", vec![s.community], 100),
            withdraw("130.149.2.66/32", 90, 100),
        ];
        let run = |builder: SessionBuilder| {
            let mut session = builder.build();
            for elem in &stream {
                session.push(elem);
            }
            session.finish()
        };
        let without = run(s.builder());
        let with_empty = run(s.builder().negative_controls(Arc::new(NegativeControls::default())));
        assert_eq!(without.events, with_empty.events);
        assert_eq!(without.stats, with_empty.stats);
        assert_eq!(without.census, with_empty.census);
        assert_eq!(with_empty.stats.control_suppressed, 0);
    }

    #[test]
    fn session_interns_paths_and_community_sets() {
        let s = setup();
        let mut session = s.session();
        // Three announcements, two distinct paths / community sets: the
        // intern tables dedup, and the summary carries them out.
        let a1 = announce("130.149.1.66/32", 10, "100 64777 200", vec![s.community], 100);
        let a2 = announce("130.149.1.67/32", 11, "100 64777 200", vec![s.community], 100);
        let a3 = announce("130.149.1.68/32", 12, "300 64777 200", vec![], 100);
        session.push(&a1);
        session.push(&a2);
        session.push(&a3);
        assert_eq!(session.interned_paths().len(), 2);
        assert_eq!(session.interned_community_sets().len(), 2);
        let canonical = session.interned_paths().canonical(&a1.as_path).unwrap().clone();
        assert_eq!(canonical, a2.as_path, "equal paths share one canonical entry");

        let summary = session.finish_with(&mut EventCollector::default());
        assert_eq!(summary.paths.len(), 2);
        assert_eq!(summary.community_sets.len(), 2);

        // Merging two summaries with overlapping tables keeps existing
        // ids stable and dedups: the merged table is the set union.
        let mut merged = StreamSummary::empty();
        merged.merge(summary.clone());
        merged.merge(summary);
        assert_eq!(merged.paths.len(), 2);
        assert_eq!(merged.community_sets.len(), 2);
    }

    #[test]
    fn basic_event_lifecycle() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.prefix, "9.9.9.9/32".parse().unwrap());
        assert_eq!(e.start, SimTime::from_unix(100));
        assert_eq!(e.end, Some(SimTime::from_unix(160)));
        assert_eq!(e.providers, BTreeSet::from([ProviderId::As(s.provider)]));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)]));
        assert!(!e.bundled_detection);
        assert_eq!(result.stats.explicit_withdrawals, 1);
    }

    #[test]
    fn user_is_hop_before_provider_after_deprepending() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64777 64999 64999 64999",
            vec![s.community],
            100,
        ));
        let result = session.finish();
        assert_eq!(result.events[0].users, BTreeSet::from([Asn::new(64_999)]));
        // Distance counts deprepended hops: peer(100)=pos0, provider pos1
        // → distance 2 per the paper's 1-indexed convention.
        assert!(result.events[0].distances.contains(&DetectionDistance::Hops(2)));
    }

    #[test]
    fn pathological_path_distance_saturates_instead_of_wrapping() {
        // A >254-hop path must clamp the detection distance at u8::MAX,
        // not wrap around (regression: the old `as u8` cast wrapped).
        let s = setup();
        let mut session = s.session();
        let mut hops: Vec<String> = (1..=300u32).map(|k| (1000 + k).to_string()).collect();
        hops.push(s.provider.value().to_string());
        hops.push("64999".to_string());
        session.push(&announce("9.9.9.9/32", 100, &hops.join(" "), vec![s.community], 1001));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(
            result.events[0].distances,
            BTreeSet::from([DetectionDistance::Hops(u8::MAX)]),
            "301-hop distance must saturate at 255"
        );
    }

    #[test]
    fn bundled_detection_when_provider_absent() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert!(e.bundled_detection);
        assert!(e.distances.contains(&DetectionDistance::NoPath));
        assert_eq!(e.users, BTreeSet::from([Asn::new(64_999)])); // origin
        assert_eq!(result.stats.bundled_detections, 1);
    }

    #[test]
    fn bundling_ablation_disables_no_path_detection() {
        let s = setup();
        let mut session = s.builder().bundling_detection(false).build();
        session.push(&announce("9.9.9.9/32", 100, "100 200 64999", vec![s.community], 100));
        let result = session.finish();
        assert!(result.events.is_empty());
    }

    #[test]
    fn ambiguous_community_requires_path_presence() {
        let s = setup();
        let mut dict = (*s.dict).clone();
        let shared = Community::from_parts(0, 666);
        dict.insert_validated(Asn::new(501), shared);
        dict.insert_validated(Asn::new(502), shared);
        let mut session = InferenceSession::new(Arc::new(dict), s.refdata.clone());
        // Neither 501 nor 502 on path: skipped.
        session.push(&announce("9.9.9.9/32", 100, "100 200 300", vec![shared], 100));
        assert_eq!(session.stats().ambiguous_unresolved, 1);
        // 502 on path: resolved to 502 only.
        session.push(&announce("8.8.8.8/32", 100, "100 502 300", vec![shared], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::As(Asn::new(502))]));
    }

    #[test]
    fn implicit_withdrawal_closes_event() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        // Re-announcement without the tag: implicit withdrawal.
        session.push(&announce("9.9.9.9/32", 200, "100 64777 64999", vec![], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(200)));
        assert_eq!(result.stats.implicit_withdrawals, 1);
    }

    #[test]
    fn per_peer_correlation_takes_last_close() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        // First peer withdraws early; second keeps it until 500.
        session.push(&withdraw("9.9.9.9/32", 150, 100));
        // Still open: only one of two peers closed.
        assert_eq!(session.open_event_count(), 1);
        session.push(&withdraw("9.9.9.9/32", 500, 200));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].start, SimTime::from_unix(100));
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(500)));
        assert_eq!(result.events[0].peer_count, 2);
    }

    #[test]
    fn per_peer_ablation_closes_on_first_withdrawal() {
        let s = setup();
        let mut session = s.builder().per_peer_state(false).build();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        session.push(&withdraw("9.9.9.9/32", 150, 100));
        let result = session.finish();
        // Collapsed state: the early withdrawal ends the event.
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(150)));
    }

    #[test]
    fn rib_initialization_uses_time_zero() {
        let s = setup();
        let mut session = s.session();
        let rib = vec![announce("9.9.9.9/32", 10_000, "100 64777 64999", vec![s.community], 100)];
        session.initialize_from_rib(&rib);
        session.push(&withdraw("9.9.9.9/32", 10_500, 100));
        let result = session.finish();
        assert_eq!(result.events[0].start, SimTime::ZERO);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(10_500)));
    }

    #[test]
    fn on_off_pattern_yields_multiple_events() {
        let s = setup();
        let mut session = s.session();
        for k in 0..3u64 {
            let t0 = 1000 + k * 300;
            session.push(&announce("9.9.9.9/32", t0, "100 64777 64999", vec![s.community], 100));
            session.push(&withdraw("9.9.9.9/32", t0 + 60, 100));
        }
        let result = session.finish();
        assert_eq!(result.events.len(), 3);
        for e in &result.events {
            assert_eq!(e.duration(SimTime::ZERO).as_secs(), 60);
        }
    }

    #[test]
    fn open_events_survive_finish_with_no_end() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, None);
    }

    #[test]
    fn bogon_announcements_are_cleaned() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("10.0.0.1/32", 100, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert!(result.events.is_empty());
        assert_eq!(result.stats.cleaned, 1);
    }

    #[test]
    fn ixp_detection_via_route_server_on_path() {
        // Use a real generated topology so refdata has IXPs.
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut session = InferenceSession::new(Arc::new(dict), refdata);
        let member = ixp.members[0];
        let elem = announce(
            "9.9.9.9/32",
            100,
            &format!("100 {} {}", ixp.route_server_asn.value(), member.value()),
            vec![Community::BLACKHOLE],
            100,
        );
        session.push(&elem);
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        assert_eq!(result.events[0].users, BTreeSet::from([member]));
    }

    #[test]
    fn ixp_detection_via_peer_ip_in_lan() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(31)).build();
        let d = deploy(&t, &CollectorConfig::tiny(4));
        let refdata = Arc::new(ReferenceData::build(&t, &d));
        let ixp = t.ixps()[0].clone();
        let mut dict = BlackholeDictionary::default();
        dict.insert_validated(ixp.route_server_asn, Community::BLACKHOLE);
        let mut session = InferenceSession::new(Arc::new(dict), refdata);
        let member = ixp.members[0];
        let mut elem = announce(
            "9.9.9.9/32",
            100,
            &format!("{member_v}", member_v = member.value()),
            vec![Community::BLACKHOLE],
            member.value(),
        );
        elem.peer_ip = ixp.member_lan_ip(member).map(std::net::IpAddr::V4).unwrap();
        elem.dataset = DataSource::Pch;
        session.push(&elem);
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        let e = &result.events[0];
        assert_eq!(e.providers, BTreeSet::from([ProviderId::Ixp(ixp.id)]));
        // User = peer-as; distance 0 (collector at the IXP).
        assert_eq!(e.users, BTreeSet::from([member]));
        assert!(e.distances.contains(&DetectionDistance::Hops(0)));
    }

    #[test]
    fn census_records_all_tagged_and_untagged_communities() {
        let s = setup();
        let mut session = s.session();
        let other = Community::from_parts(555, 80);
        session.push(&announce(
            "9.9.9.9/32",
            100,
            "100 64777 64999",
            vec![s.community, other],
            100,
        ));
        session.push(&announce("7.0.0.0/16", 100, "100 300", vec![other], 100));
        let result = session.finish();
        assert_eq!(result.census.occurrences(s.community), 1);
        assert_eq!(result.census.occurrences(other), 2);
        assert!(result.census.cooccurs(other, s.community));
    }

    #[test]
    fn multi_provider_bundle_yields_multi_provider_event() {
        let s = setup();
        let mut dict = (*s.dict).clone();
        let c2 = Community::from_parts(888, 666);
        dict.insert_validated(Asn::new(64_888), c2);
        let mut session = InferenceSession::new(Arc::new(dict), s.refdata.clone());
        session.push(&announce("9.9.9.9/32", 100, "100 64999", vec![s.community, c2], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].providers.len(), 2);
    }

    #[test]
    fn ingest_equals_push_loop() {
        let s = setup();
        let elems = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
            announce("8.8.8.8/32", 200, "100 64777 64999", vec![s.community], 100),
        ];
        let mut by_push = s.session();
        for e in &elems {
            by_push.push(e);
        }
        let mut by_ingest = s.session();
        assert_eq!(by_ingest.ingest(&mut SliceSource::new(&elems)), 3);
        assert_eq!(by_push.finish(), by_ingest.finish());
    }

    #[test]
    fn merged_multi_collector_ingest_equals_materialized_merge() {
        use bh_routing::{merge_streams, MergedSource};

        let s = setup();
        // Two collector streams, interleaved in time.
        let mut ris = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 300, 100),
        ];
        ris[0].collector = 0;
        ris[1].collector = 0;
        let mut rv = vec![
            announce("9.9.9.9/32", 200, "200 64777 64999", vec![s.community], 200),
            withdraw("9.9.9.9/32", 400, 200),
        ];
        for e in &mut rv {
            e.dataset = DataSource::RouteViews;
            e.collector = 1;
        }

        let mut by_push = s.session();
        for e in merge_streams(vec![ris.clone(), rv.clone()]) {
            by_push.push(&e);
        }

        let mut by_merge = s.session();
        let merged = &mut MergedSource::new(vec![SliceSource::new(&ris), SliceSource::new(&rv)]);
        assert_eq!(by_merge.ingest(merged), 4);
        assert_eq!(by_merge.finish(), by_push.finish());
    }

    #[test]
    fn drain_closed_hands_out_events_mid_stream() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let drained = session.drain_closed();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].end, Some(SimTime::from_unix(160)));
        // Drained events do not reappear.
        assert!(session.drain_closed().is_empty());
        session.push(&announce("8.8.8.8/32", 200, "100 64777 64999", vec![s.community], 100));
        let result = session.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].prefix, "8.8.8.8/32".parse().unwrap());
        // Stats keep covering the whole stream.
        assert_eq!(result.stats.elems, 3);
    }

    #[test]
    fn checkpoint_resume_continues_exactly() {
        let s = setup();
        let elems = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            announce("8.8.8.8/32", 120, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
            withdraw("8.8.8.8/32", 180, 100),
        ];
        // One shot.
        let mut oneshot = s.session();
        for e in &elems {
            oneshot.push(e);
        }
        let expected = oneshot.finish();

        // Suspend after two elements, resume in a fresh session.
        let mut first = s.session();
        first.push(&elems[0]);
        first.push(&elems[1]);
        let checkpoint = first.checkpoint();
        assert_eq!(checkpoint.open_events(), 2);
        assert_eq!(checkpoint.pending_closed(), 0);
        drop(first);
        let mut resumed = s.builder().resume(checkpoint);
        resumed.push(&elems[2]);
        resumed.push(&elems[3]);
        assert_eq!(resumed.finish(), expected);
    }

    #[test]
    fn resume_keeps_the_checkpointed_configuration() {
        // An ablated (collapsed-peer) session checkpointed mid-stream
        // must resume with the same semantics even if the resuming
        // builder was left at defaults — otherwise real-peer withdrawals
        // could never match the collapsed PeerKey and events would
        // stay open forever.
        let s = setup();
        let mut ablated = s.builder().per_peer_state(false).build();
        ablated.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        ablated.push(&announce("9.9.9.9/32", 110, "200 64777 64999", vec![s.community], 200));
        let checkpoint = ablated.checkpoint();
        // Resume from a default-config builder: checkpoint config wins.
        let mut resumed = s.builder().resume(checkpoint);
        resumed.push(&withdraw("9.9.9.9/32", 150, 100));
        let result = resumed.finish();
        assert_eq!(result.events.len(), 1);
        assert_eq!(result.events[0].end, Some(SimTime::from_unix(150)));
    }

    #[test]
    fn result_merge_equals_one_session_over_prefix_disjoint_streams() {
        let s = setup();
        // Two prefix-disjoint streams (the shard-partition property).
        let elems_a = vec![
            announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100),
            withdraw("9.9.9.9/32", 160, 100),
        ];
        let elems_b = vec![announce("8.8.8.8/32", 120, "100 64777 64999", vec![s.community], 100)];

        let mut combined = s.session();
        for e in elems_a.iter().chain(&elems_b) {
            combined.push(e);
        }
        let expected = combined.finish();

        let mut session_a = s.session();
        for e in &elems_a {
            session_a.push(e);
        }
        let mut merged = session_a.finish();
        let mut session_b = s.session();
        for e in &elems_b {
            session_b.push(e);
        }
        merged.merge(session_b.finish());
        assert_eq!(merged, expected);
    }

    #[test]
    fn checkpoint_carries_undrained_closed_events() {
        let s = setup();
        let mut session = s.session();
        session.push(&announce("9.9.9.9/32", 100, "100 64777 64999", vec![s.community], 100));
        session.push(&withdraw("9.9.9.9/32", 160, 100));
        let checkpoint = session.checkpoint();
        assert_eq!(checkpoint.pending_closed(), 1);
        let resumed = s.builder().resume(checkpoint);
        assert_eq!(resumed.finish().events.len(), 1);
    }
}
