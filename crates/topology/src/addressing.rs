//! Deterministic address-space allocation for the synthetic Internet.
//!
//! Hands out non-overlapping, bogon-free IPv4 blocks to ASes and IXP
//! peering LANs. Allocation is sequential over the unicast space with
//! martian ranges skipped, so a fixed topology seed always yields the
//! same addressing plan.

use std::net::Ipv4Addr;

use bh_bgp_types::bogon::BogonFilter;
use bh_bgp_types::prefix::Ipv4Prefix;

/// Sequential allocator of disjoint IPv4 blocks.
#[derive(Debug)]
pub struct AddressAllocator {
    /// Next candidate /16 index (upper 16 bits of the address space).
    next_slab: u32,
    /// Current packing slab for [`AddressAllocator::alloc_packed`]:
    /// `(network, next_free_offset)`.
    packing: Option<(u32, u32)>,
    bogons: BogonFilter,
    allocated: u64,
}

impl Default for AddressAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressAllocator {
    /// Start allocating at 5.0.0.0 (below that sits special-purpose and
    /// legacy space).
    pub fn new() -> Self {
        AddressAllocator {
            next_slab: 5 << 8,
            packing: None,
            bogons: BogonFilter::new(),
            allocated: 0,
        }
    }

    /// Total blocks handed out.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Allocate one block of the requested length (8 ≤ length ≤ 24).
    /// Each allocation consumes a whole /16 slab (or several for shorter
    /// prefixes), which keeps every allocation trivially disjoint.
    pub fn alloc(&mut self, length: u8) -> Ipv4Prefix {
        assert!((8..=24).contains(&length), "supported allocation lengths are /8../24");
        loop {
            let slabs_needed = if length >= 16 { 1 } else { 1u32 << (16 - length) };
            // Align to the block size.
            let aligned = self.next_slab.div_ceil(slabs_needed) * slabs_needed;
            let network = aligned << 16;
            let candidate = Ipv4Prefix::from_raw(network, length);
            self.next_slab = aligned + slabs_needed;
            let first_octet = network >> 24;
            if first_octet >= 224 {
                panic!("address space exhausted: synthetic topology too large");
            }
            if self.bogons.is_routable(&candidate) {
                self.allocated += 1;
                return candidate;
            }
            // Martian slab: skip it (next_slab already advanced).
        }
    }

    /// Allocate one block of the requested length, packing /16../24
    /// blocks densely inside shared /16 slabs instead of burning a whole
    /// slab per allocation. Shorter prefixes fall back to [`Self::alloc`].
    ///
    /// The one-slab-per-allocation strategy of `alloc` caps the
    /// synthetic Internet at ~56k allocations; the 75k-AS massive
    /// generator uses this packed mode for stub address space. Packed
    /// blocks come from the same `next_slab` cursor, so they stay
    /// disjoint from slab-granular allocations, and a fresh slab is
    /// bogon-checked as a whole /16 before any sub-block is carved from
    /// it (the filter rejects a /16 overlapping any martian range).
    pub fn alloc_packed(&mut self, length: u8) -> Ipv4Prefix {
        assert!((8..=24).contains(&length), "supported allocation lengths are /8../24");
        if length < 16 {
            return self.alloc(length);
        }
        let block = 1u32 << (32 - u32::from(length));
        let (base, offset) = match self.packing {
            // Align within the slab (all block sizes are powers of two,
            // so aligning the offset up keeps every block natural).
            Some((base, next)) => {
                let aligned = next.div_ceil(block) * block;
                if aligned + block <= 1 << 16 {
                    (base, aligned)
                } else {
                    (self.take_slab(), 0)
                }
            }
            None => (self.take_slab(), 0),
        };
        self.packing = Some((base, offset + block));
        self.allocated += 1;
        Ipv4Prefix::from_raw(base + offset, length)
    }

    /// Claim the next routable /16 slab and return its network address.
    fn take_slab(&mut self) -> u32 {
        loop {
            let network = self.next_slab << 16;
            self.next_slab += 1;
            if network >> 24 >= 224 {
                panic!("address space exhausted: synthetic topology too large");
            }
            if self.bogons.is_routable(&Ipv4Prefix::from_raw(network, 16)) {
                return network;
            }
        }
    }

    /// Allocate a /24 peering LAN.
    pub fn alloc_lan(&mut self) -> Ipv4Prefix {
        self.alloc(24)
    }

    /// Convenience: the conventional blackholing IP for a peering LAN
    /// (last octet .66, as the paper observes for most IXPs).
    pub fn blackhole_ip(lan: &Ipv4Prefix) -> Ipv4Addr {
        lan.nth_addr(66).unwrap_or_else(|| lan.network())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint() {
        let mut alloc = AddressAllocator::new();
        let mut blocks = Vec::new();
        for i in 0..200 {
            let len = 14 + (i % 11) as u8; // /14../24 mix
            blocks.push(alloc.alloc(len));
        }
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                assert!(!a.contains(b) && !b.contains(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn allocations_avoid_bogons() {
        let mut alloc = AddressAllocator::new();
        let filter = BogonFilter::new();
        for _ in 0..500 {
            let p = alloc.alloc(16);
            assert!(filter.is_routable(&p), "{p} is bogon");
        }
    }

    #[test]
    fn allocation_is_deterministic() {
        let run = || {
            let mut alloc = AddressAllocator::new();
            (0..50).map(|i| alloc.alloc(16 + (i % 9) as u8)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn skips_private_slabs() {
        let mut alloc = AddressAllocator::new();
        for _ in 0..3000 {
            let p = alloc.alloc(16);
            let first = p.network().octets()[0];
            assert_ne!(first, 10, "10/8 must be skipped, got {p}");
            assert!(!(first == 172 && (16..32).contains(&p.network().octets()[1])));
            assert!(!(first == 192 && p.network().octets()[1] == 168));
        }
    }

    #[test]
    fn packed_allocations_are_disjoint_and_dense() {
        let mut alloc = AddressAllocator::new();
        let mut blocks = Vec::new();
        for i in 0..4000 {
            let len = 19 + (i % 6) as u8; // /19../24 mix
            blocks.push(alloc.alloc_packed(len));
        }
        let filter = BogonFilter::new();
        for (i, a) in blocks.iter().enumerate() {
            assert!(filter.is_routable(a), "{a} is bogon");
            for b in blocks.iter().skip(i + 1) {
                assert!(!a.contains(b) && !b.contains(a), "{a} overlaps {b}");
            }
        }
        // Dense: 4000 blocks of at most /19 (8192 addrs) fit well under
        // 4000 slabs — the whole point over `alloc`.
        let max_slab = blocks.iter().map(|p| u32::from(p.network()) >> 16).max().unwrap();
        assert!(max_slab < (5 << 8) + 600, "packing too sparse: slab {max_slab}");
    }

    #[test]
    fn packed_and_slab_allocations_stay_disjoint() {
        let mut alloc = AddressAllocator::new();
        let mut blocks = Vec::new();
        for i in 0..300 {
            blocks.push(if i % 3 == 0 {
                alloc.alloc(14 + (i % 9) as u8)
            } else {
                alloc.alloc_packed(17 + (i % 8) as u8)
            });
        }
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                assert!(!a.contains(b) && !b.contains(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn packed_allocation_is_deterministic() {
        let run = || {
            let mut alloc = AddressAllocator::new();
            (0..200).map(|i| alloc.alloc_packed(16 + (i % 9) as u8)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blackhole_ip_is_dot66() {
        let lan: Ipv4Prefix = "185.1.0.0/24".parse().unwrap();
        assert_eq!(AddressAllocator::blackhole_ip(&lan), "185.1.0.66".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    #[should_panic(expected = "supported allocation lengths")]
    fn rejects_unsupported_lengths() {
        AddressAllocator::new().alloc(30);
    }
}
