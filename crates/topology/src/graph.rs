//! The assembled topology: AS map, relationship graph, IXPs, and the
//! derived structures the rest of the pipeline queries (customer cones,
//! peering-LAN lookup, origin lookup).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::net::{IpAddr, Ipv4Addr};

use serde::Serialize;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::trie::PrefixTrie;

use crate::types::{AsInfo, Ixp, IxpId, NetworkType, Relationship};

/// The synthetic Internet: ASes, edges, IXPs.
#[derive(Debug, Clone, Serialize)]
pub struct Topology {
    ases: BTreeMap<Asn, AsInfo>,
    /// Adjacency: for each AS, its neighbors with the relationship as seen
    /// from that AS.
    adjacency: BTreeMap<Asn, Vec<(Asn, Relationship)>>,
    ixps: Vec<Ixp>,
}

impl Topology {
    /// Assemble from parts (used by the generator; edges are given once,
    /// from the first AS's perspective, and mirrored automatically).
    pub fn assemble(
        ases: BTreeMap<Asn, AsInfo>,
        edges: Vec<(Asn, Asn, Relationship)>,
        ixps: Vec<Ixp>,
    ) -> Self {
        let mut adjacency: BTreeMap<Asn, Vec<(Asn, Relationship)>> = BTreeMap::new();
        for asn in ases.keys() {
            adjacency.insert(*asn, Vec::new());
        }
        for (a, b, rel) in edges {
            adjacency.entry(a).or_default().push((b, rel));
            adjacency.entry(b).or_default().push((a, rel.reverse()));
        }
        for neighbors in adjacency.values_mut() {
            neighbors.sort_unstable_by_key(|(asn, _)| *asn);
            neighbors.dedup();
        }
        Topology { ases, adjacency, ixps }
    }

    /// All ASes.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.ases.values()
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Look up an AS.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.ases.get(&asn)
    }

    /// Mutable AS lookup (scenario drivers adjust offerings).
    pub fn as_info_mut(&mut self, asn: Asn) -> Option<&mut AsInfo> {
        self.ases.get_mut(&asn)
    }

    /// All IXPs.
    pub fn ixps(&self) -> &[Ixp] {
        &self.ixps
    }

    /// Look up an IXP.
    pub fn ixp(&self, id: IxpId) -> Option<&Ixp> {
        self.ixps.get(id.0 as usize)
    }

    /// The IXP whose route server uses this ASN, if any.
    pub fn ixp_by_route_server(&self, asn: Asn) -> Option<&Ixp> {
        self.ixps.iter().find(|ixp| ixp.route_server_asn == asn)
    }

    /// Neighbors of an AS with relationships as seen from it.
    pub fn neighbors(&self, asn: Asn) -> &[(Asn, Relationship)] {
        self.adjacency.get(&asn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The relationship `me` has with `neighbor`, if they are adjacent.
    ///
    /// Binary search over the adjacency list ([`Topology::assemble`]
    /// sorts each list by ASN), so this is `O(log degree)` even at hub
    /// ASes with tens of thousands of customers. If the generator ever
    /// emitted two different relationships for the same pair, the first
    /// entry wins — matching a linear scan.
    pub fn rel_between(&self, me: Asn, neighbor: Asn) -> Option<Relationship> {
        let neighbors = self.neighbors(me);
        let i = neighbors.partition_point(|(asn, _)| *asn < neighbor);
        match neighbors.get(i) {
            Some((asn, rel)) if *asn == neighbor => Some(*rel),
            _ => None,
        }
    }

    /// Compute per-AS propagation ranks (customer-cone depth): the rank
    /// of an AS is the length of the longest customer chain below it, so
    /// every provider edge strictly increases rank. Stubs are rank 0;
    /// tier-1s sit at the top. Phased propagation engines use this to
    /// schedule the valley-free passes (up in ascending rank order, down
    /// in descending order) and to parallelize within a rank, because no
    /// two ASes at the same rank are in a provider/customer relation.
    ///
    /// Computed by Kahn-style longest-path over the customer→provider
    /// DAG. Relationship cycles (which the generator never emits, but a
    /// loaded graph might carry) are drained onto a single rank above
    /// everything acyclic, keeping the schedule well-defined.
    pub fn propagation_ranks(&self) -> PropagationRanks {
        let index = AsnIndex::from_topology(self);
        let n = index.len();
        let mut ranks = vec![0u32; n];
        // pending[i] = number of customers of AS i not yet ranked.
        let mut pending = vec![0u32; n];
        for (&asn, neighbors) in &self.adjacency {
            let i = index.index_of(asn).expect("adjacency ASN in index");
            pending[i] =
                neighbors.iter().filter(|(_, rel)| *rel == Relationship::Customer).count() as u32;
        }
        let mut queue: VecDeque<usize> =
            (0..n).filter(|&i| pending[i] == 0).collect::<Vec<_>>().into();
        let mut ranked = 0usize;
        let mut max_rank = 0u32;
        while let Some(i) = queue.pop_front() {
            ranked += 1;
            max_rank = max_rank.max(ranks[i]);
            let asn = index.asn_at(i).expect("dense index in range");
            for &(neighbor, rel) in self.neighbors(asn) {
                // My providers sit at least one rank above me.
                if rel == Relationship::Provider {
                    let p = index.index_of(neighbor).expect("neighbor in index");
                    ranks[p] = ranks[p].max(ranks[i] + 1);
                    pending[p] -= 1;
                    if pending[p] == 0 {
                        queue.push_back(p);
                    }
                }
            }
        }
        if ranked < n {
            // Provider/customer cycle: park the unranked remainder on a
            // rank of their own so every provider edge out of the acyclic
            // part still increases rank.
            max_rank += 1;
            for i in 0..n {
                if pending[i] > 0 {
                    ranks[i] = max_rank;
                }
            }
        }
        PropagationRanks { index, ranks, max_rank }
    }

    /// Providers of an AS.
    pub fn providers_of(&self, asn: Asn) -> Vec<Asn> {
        self.rel_neighbors(asn, Relationship::Provider)
    }

    /// Customers of an AS.
    pub fn customers_of(&self, asn: Asn) -> Vec<Asn> {
        self.rel_neighbors(asn, Relationship::Customer)
    }

    /// Peers of an AS (bilateral only; route-server sessions are separate).
    pub fn peers_of(&self, asn: Asn) -> Vec<Asn> {
        self.rel_neighbors(asn, Relationship::Peer)
    }

    fn rel_neighbors(&self, asn: Asn, rel: Relationship) -> Vec<Asn> {
        self.neighbors(asn).iter().filter(|(_, r)| *r == rel).map(|(n, _)| *n).collect()
    }

    /// The customer cone of an AS: itself plus everything reachable by
    /// repeatedly following customer links (Luckie et al.). Providers use
    /// this for blackhole authentication ("accept a blackhole community if
    /// the request comes from the originator of the prefix or a provider
    /// that has this prefix in its customer cone").
    pub fn customer_cone(&self, asn: Asn) -> BTreeSet<Asn> {
        let mut cone = BTreeSet::new();
        let mut queue = VecDeque::new();
        cone.insert(asn);
        queue.push_back(asn);
        while let Some(current) = queue.pop_front() {
            for customer in self.customers_of(current) {
                if cone.insert(customer) {
                    queue.push_back(customer);
                }
            }
        }
        cone
    }

    /// The upstream (provider) cone: every AS reachable by repeatedly
    /// following provider links. Used for Atlas-style probe grouping.
    pub fn provider_cone(&self, asn: Asn) -> BTreeSet<Asn> {
        let mut cone = BTreeSet::new();
        let mut queue = VecDeque::new();
        cone.insert(asn);
        queue.push_back(asn);
        while let Some(current) = queue.pop_front() {
            for provider in self.providers_of(current) {
                if cone.insert(provider) {
                    queue.push_back(provider);
                }
            }
        }
        cone
    }

    /// Is `target`'s origin within `provider`'s customer cone?
    pub fn in_customer_cone(&self, provider: Asn, target: Asn) -> bool {
        // BFS with early exit (avoids materializing the full cone).
        if provider == target {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(provider);
        queue.push_back(provider);
        while let Some(current) = queue.pop_front() {
            for customer in self.customers_of(current) {
                if customer == target {
                    return true;
                }
                if seen.insert(customer) {
                    queue.push_back(customer);
                }
            }
        }
        false
    }

    /// Build the origin lookup: prefix → originating AS.
    pub fn origin_index(&self) -> OriginIndex {
        let mut trie = PrefixTrie::new();
        for info in self.ases.values() {
            for prefix in &info.prefixes {
                trie.insert(*prefix, info.asn);
            }
        }
        OriginIndex { trie }
    }

    /// Build the peering-LAN lookup: IP → IXP (the PeeringDB query used by
    /// the inference's peer-ip detection path).
    pub fn lan_index(&self) -> LanIndex {
        let mut trie = PrefixTrie::new();
        for ixp in &self.ixps {
            trie.insert(ixp.peering_lan, ixp.id);
        }
        LanIndex { trie }
    }

    /// ASes of a given ground-truth network type.
    pub fn ases_of_type(&self, ty: NetworkType) -> Vec<Asn> {
        self.ases.values().filter(|info| info.network_type == ty).map(|info| info.asn).collect()
    }

    /// All blackholing providers (ground truth).
    pub fn blackholing_providers(&self) -> Vec<Asn> {
        self.ases.values().filter(|info| info.offers_blackholing()).map(|info| info.asn).collect()
    }

    /// "Routed transit ASes": ASes with at least one customer — the paper's
    /// denominator for adoption growth (§6).
    pub fn transit_as_count(&self) -> usize {
        self.ases.keys().filter(|&&asn| !self.customers_of(asn).is_empty()).count()
    }

    /// Degree statistics, used by the CAIDA-style classifier.
    pub fn degrees(&self, asn: Asn) -> Degrees {
        let mut d = Degrees::default();
        for (_, rel) in self.neighbors(asn) {
            match rel {
                Relationship::Customer => d.customers += 1,
                Relationship::Provider => d.providers += 1,
                Relationship::Peer => d.peers += 1,
                Relationship::RouteServer => d.route_servers += 1,
            }
        }
        d
    }
}

/// Degree counts per relationship type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degrees {
    /// Customer links.
    pub customers: usize,
    /// Provider links.
    pub providers: usize,
    /// Bilateral peers.
    pub peers: usize,
    /// Route-server sessions.
    pub route_servers: usize,
}

/// Prefix → origin AS lookup.
#[derive(Debug, Clone)]
pub struct OriginIndex {
    trie: PrefixTrie<Asn>,
}

impl OriginIndex {
    /// The AS originating the most specific covering block of `prefix`.
    pub fn origin_of(&self, prefix: &Ipv4Prefix) -> Option<Asn> {
        self.trie.covering(prefix).map(|(_, asn)| *asn)
    }

    /// The AS whose allocation contains `addr`.
    pub fn origin_of_addr(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.trie.longest_match(addr).map(|(_, asn)| *asn)
    }

    /// Number of indexed allocations.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

/// IP → IXP peering-LAN lookup.
#[derive(Debug, Clone)]
pub struct LanIndex {
    trie: PrefixTrie<IxpId>,
}

impl LanIndex {
    /// Which IXP's peering LAN contains this address?
    pub fn ixp_of_ip(&self, ip: IpAddr) -> Option<IxpId> {
        match ip {
            IpAddr::V4(v4) => self.trie.longest_match(v4).map(|(_, id)| *id),
            IpAddr::V6(_) => None,
        }
    }
}

/// A compact map from ASN to a dense index (used by simulators that keep
/// per-AS vectors).
#[derive(Debug, Clone, Default)]
pub struct AsnIndex {
    map: HashMap<Asn, usize>,
    order: Vec<Asn>,
}

impl AsnIndex {
    /// Build from the topology's AS set (deterministic order).
    pub fn from_topology(topology: &Topology) -> Self {
        let mut index = AsnIndex::default();
        for info in topology.ases() {
            index.map.insert(info.asn, index.order.len());
            index.order.push(info.asn);
        }
        index
    }

    /// Dense index of an ASN.
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.map.get(&asn).copied()
    }

    /// ASN at a dense index.
    pub fn asn_at(&self, idx: usize) -> Option<Asn> {
        self.order.get(idx).copied()
    }

    /// Number of ASNs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Per-AS propagation ranks (customer-cone depth), plus the dense
/// [`AsnIndex`] they are keyed by. Built once per topology by
/// [`Topology::propagation_ranks`] and shared (it is cheap to clone the
/// Arc'd wrapper callers usually put around it) across simulator
/// instances — at 75k ASes the Kahn pass is the expensive part, not the
/// lookups.
#[derive(Debug, Clone)]
pub struct PropagationRanks {
    index: AsnIndex,
    ranks: Vec<u32>,
    max_rank: u32,
}

impl PropagationRanks {
    /// The rank of an AS (0 for stubs; `None` for unknown ASNs).
    pub fn rank_of(&self, asn: Asn) -> Option<u32> {
        self.index.index_of(asn).map(|i| self.ranks[i])
    }

    /// The highest rank present.
    pub fn max_rank(&self) -> u32 {
        self.max_rank
    }

    /// The dense index ranks are keyed by.
    pub fn index(&self) -> &AsnIndex {
        &self.index
    }

    /// Rank at a dense index (panics if out of range).
    pub fn rank_at(&self, idx: usize) -> u32 {
        self.ranks[idx]
    }

    /// Number of ranked ASes.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Is the rank table empty?
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::types::Tier;

    use super::*;

    fn mk_as(asn: u32, ty: NetworkType) -> AsInfo {
        AsInfo {
            asn: Asn::new(asn),
            tier: Tier::Stub,
            network_type: ty,
            country: "DE",
            prefixes: vec![],
            blackhole_offering: None,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        }
    }

    /// 1 (tier-1) ← 2 (transit) ← 3 (stub); 2 peers with 4; 5 isolated.
    fn small_topology() -> Topology {
        let mut ases = BTreeMap::new();
        for (asn, ty) in [
            (1, NetworkType::TransitAccess),
            (2, NetworkType::TransitAccess),
            (3, NetworkType::Content),
            (4, NetworkType::TransitAccess),
            (5, NetworkType::Enterprise),
        ] {
            ases.insert(Asn::new(asn), mk_as(asn, ty));
        }
        let edges = vec![
            (Asn::new(1), Asn::new(2), Relationship::Customer), // 2 is customer of 1
            (Asn::new(2), Asn::new(3), Relationship::Customer), // 3 is customer of 2
            (Asn::new(2), Asn::new(4), Relationship::Peer),
        ];
        Topology::assemble(ases, edges, vec![])
    }

    #[test]
    fn adjacency_is_mirrored() {
        let t = small_topology();
        assert_eq!(t.customers_of(Asn::new(1)), vec![Asn::new(2)]);
        assert_eq!(t.providers_of(Asn::new(2)), vec![Asn::new(1)]);
        assert_eq!(t.peers_of(Asn::new(2)), vec![Asn::new(4)]);
        assert_eq!(t.peers_of(Asn::new(4)), vec![Asn::new(2)]);
        assert!(t.neighbors(Asn::new(5)).is_empty());
    }

    #[test]
    fn customer_cone_is_transitive() {
        let t = small_topology();
        let cone = t.customer_cone(Asn::new(1));
        assert_eq!(cone, BTreeSet::from([Asn::new(1), Asn::new(2), Asn::new(3)]));
        // Peers are not in the cone.
        assert!(!cone.contains(&Asn::new(4)));
        // Stub cone is itself.
        assert_eq!(t.customer_cone(Asn::new(3)).len(), 1);
    }

    #[test]
    fn provider_cone_walks_up() {
        let t = small_topology();
        let cone = t.provider_cone(Asn::new(3));
        assert_eq!(cone, BTreeSet::from([Asn::new(1), Asn::new(2), Asn::new(3)]));
    }

    #[test]
    fn in_customer_cone_early_exit() {
        let t = small_topology();
        assert!(t.in_customer_cone(Asn::new(1), Asn::new(3)));
        assert!(t.in_customer_cone(Asn::new(2), Asn::new(3)));
        assert!(t.in_customer_cone(Asn::new(3), Asn::new(3)));
        assert!(!t.in_customer_cone(Asn::new(3), Asn::new(1)));
        assert!(!t.in_customer_cone(Asn::new(4), Asn::new(3)));
    }

    #[test]
    fn transit_count_counts_ases_with_customers() {
        let t = small_topology();
        assert_eq!(t.transit_as_count(), 2); // AS1 and AS2
    }

    #[test]
    fn origin_index_resolves_most_specific() {
        let mut ases = BTreeMap::new();
        let mut a = mk_as(10, NetworkType::TransitAccess);
        a.prefixes = vec!["20.0.0.0/8".parse().unwrap()];
        let mut b = mk_as(11, NetworkType::Content);
        b.prefixes = vec!["20.1.0.0/16".parse().unwrap()];
        ases.insert(a.asn, a);
        ases.insert(b.asn, b);
        let t = Topology::assemble(ases, vec![], vec![]);
        let idx = t.origin_index();
        assert_eq!(idx.origin_of(&"20.1.2.3/32".parse().unwrap()), Some(Asn::new(11)));
        assert_eq!(idx.origin_of(&"20.9.0.0/16".parse().unwrap()), Some(Asn::new(10)));
        assert_eq!(idx.origin_of(&"21.0.0.0/8".parse().unwrap()), None);
        assert_eq!(idx.origin_of_addr("20.1.9.9".parse().unwrap()), Some(Asn::new(11)));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn lan_index_finds_ixp() {
        let ixp = Ixp {
            id: IxpId(0),
            name: "X".into(),
            route_server_asn: Asn::new(64700),
            route_server_in_path: true,
            peering_lan: "185.1.0.0/24".parse().unwrap(),
            members: vec![],
            country: "DE",
        };
        let t = Topology::assemble(BTreeMap::new(), vec![], vec![ixp]);
        let idx = t.lan_index();
        assert_eq!(idx.ixp_of_ip("185.1.0.5".parse().unwrap()), Some(IxpId(0)));
        assert_eq!(idx.ixp_of_ip("185.2.0.5".parse().unwrap()), None);
        assert_eq!(idx.ixp_of_ip("2001:db8::1".parse().unwrap()), None);
        assert!(t.ixp_by_route_server(Asn::new(64700)).is_some());
        assert!(t.ixp_by_route_server(Asn::new(1)).is_none());
    }

    #[test]
    fn degrees_count_by_relationship() {
        let t = small_topology();
        let d = t.degrees(Asn::new(2));
        assert_eq!(d, Degrees { customers: 1, providers: 1, peers: 1, route_servers: 0 });
    }

    #[test]
    fn rel_between_matches_linear_scan() {
        let t = small_topology();
        for info in t.ases() {
            for probe in t.ases() {
                let linear = t
                    .neighbors(info.asn)
                    .iter()
                    .find(|(n, _)| *n == probe.asn)
                    .map(|(_, rel)| *rel);
                assert_eq!(t.rel_between(info.asn, probe.asn), linear);
            }
        }
        assert_eq!(t.rel_between(Asn::new(1), Asn::new(2)), Some(Relationship::Customer));
        assert_eq!(t.rel_between(Asn::new(2), Asn::new(1)), Some(Relationship::Provider));
        assert_eq!(t.rel_between(Asn::new(2), Asn::new(4)), Some(Relationship::Peer));
        assert_eq!(t.rel_between(Asn::new(1), Asn::new(3)), None);
        assert_eq!(t.rel_between(Asn::new(999), Asn::new(1)), None);
    }

    #[test]
    fn propagation_ranks_increase_along_provider_edges() {
        // 1 ← 2 ← 3, 2 — 4 (peer), 5 isolated.
        let t = small_topology();
        let ranks = t.propagation_ranks();
        assert_eq!(ranks.rank_of(Asn::new(3)), Some(0));
        assert_eq!(ranks.rank_of(Asn::new(2)), Some(1));
        assert_eq!(ranks.rank_of(Asn::new(1)), Some(2));
        // Peers and isolated ASes sit wherever their customer depth puts
        // them — no customers means rank 0.
        assert_eq!(ranks.rank_of(Asn::new(4)), Some(0));
        assert_eq!(ranks.rank_of(Asn::new(5)), Some(0));
        assert_eq!(ranks.max_rank(), 2);
        assert_eq!(ranks.len(), 5);
        assert!(ranks.rank_of(Asn::new(999)).is_none());
        // The invariant the phased engine relies on.
        for info in t.ases() {
            for &(neighbor, rel) in t.neighbors(info.asn) {
                if rel == Relationship::Provider {
                    assert!(ranks.rank_of(neighbor).unwrap() > ranks.rank_of(info.asn).unwrap());
                }
            }
        }
    }

    #[test]
    fn propagation_ranks_tolerate_cycles() {
        // 1 ↔ 2 mutual providers (a cycle), 3 a customer of 2.
        let mut ases = BTreeMap::new();
        for asn in [1, 2, 3] {
            ases.insert(Asn::new(asn), mk_as(asn, NetworkType::TransitAccess));
        }
        let edges = vec![
            (Asn::new(1), Asn::new(2), Relationship::Customer),
            (Asn::new(2), Asn::new(1), Relationship::Customer),
            (Asn::new(2), Asn::new(3), Relationship::Customer),
        ];
        let t = Topology::assemble(ases, edges, vec![]);
        let ranks = t.propagation_ranks();
        // 3 is acyclic and ranked 0; the cycle members get parked above.
        assert_eq!(ranks.rank_of(Asn::new(3)), Some(0));
        assert_eq!(ranks.rank_of(Asn::new(1)), Some(ranks.max_rank()));
        assert_eq!(ranks.rank_of(Asn::new(2)), Some(ranks.max_rank()));
        assert!(ranks.max_rank() >= 1);
    }

    #[test]
    fn asn_index_round_trips() {
        let t = small_topology();
        let idx = AsnIndex::from_topology(&t);
        assert_eq!(idx.len(), 5);
        for info in t.ases() {
            let i = idx.index_of(info.asn).unwrap();
            assert_eq!(idx.asn_at(i), Some(info.asn));
        }
        assert!(idx.index_of(Asn::new(999)).is_none());
    }
}
