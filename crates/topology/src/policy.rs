//! Per-AS routing-policy configuration: the declarative half of the
//! policy-extension subsystem.
//!
//! The ground-truth topology describes *who* the networks are; this
//! module describes *how they filter*. A [`PolicyTable`] maps ASNs to
//! [`AsPolicy`] knob sets (ROV, peerlock-lite, only-to-customers,
//! community scrubbing, path-end validation, and the deliberately
//! misbehaving route leaker), and carries the [`RoaTable`] that ROV
//! validates against. `bh-routing` compiles the table into concrete
//! `PolicyExtension` hooks at simulator install time; an empty table
//! compiles to nothing and the simulator is bit-identical to the
//! pre-extension baseline (property-tested at Small scale).
//!
//! The table is *data*, not behavior: it lives here next to the rest of
//! the ground truth so workloads can describe a deployment ("strict
//! ROAs, ROV at 50% of transit") without depending on the simulator.

use std::collections::BTreeMap;

use bh_bgp_types::community::Community;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::Asn;

use crate::graph::Topology;
use crate::types::Tier;

/// RPKI origin-validation state of a (prefix, origin) pair against a
/// [`RoaTable`] (RFC 6811 semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RpkiValidity {
    /// A covering ROA authorizes this origin at this prefix length.
    Valid,
    /// Covering ROAs exist but none matches origin + length.
    Invalid,
    /// No ROA covers the prefix.
    NotFound,
}

/// A Route Origin Authorization: `origin` may announce prefixes inside
/// `prefix` up to `max_length`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roa {
    pub prefix: Ipv4Prefix,
    pub origin: Asn,
    pub max_length: u8,
}

/// A flat ROA registry with RFC 6811 validity lookup.
///
/// Lookup is linear over the covering set; tables here are topology-
/// sized (one ROA per allocation), not Internet-sized, and validation
/// runs once per import, so no trie is warranted yet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoaTable {
    roas: Vec<Roa>,
}

impl RoaTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, roa: Roa) {
        self.roas.push(roa);
    }

    pub fn len(&self) -> usize {
        self.roas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roas.is_empty()
    }

    pub fn roas(&self) -> &[Roa] {
        &self.roas
    }

    /// One ROA per registered allocation with `max_length` equal to the
    /// allocation length — the *strict* issuance style. Under strict
    /// ROAs every more-specific (including the `/32` host routes RTBH
    /// runs on) is RPKI-Invalid at ROV-deploying networks, which is
    /// exactly the blackholing-vs-ROV tension the adversarial workloads
    /// measure.
    pub fn strict_from_topology(topology: &Topology) -> Self {
        let mut table = Self::new();
        for info in topology.ases() {
            for prefix in &info.prefixes {
                table.insert(Roa {
                    prefix: *prefix,
                    origin: info.asn,
                    max_length: prefix.length(),
                });
            }
        }
        table
    }

    /// One ROA per registered allocation with `max_length = 32` — the
    /// *loose* issuance style that keeps host-route blackholing
    /// RPKI-Valid while still flagging off-cone origins as Invalid.
    pub fn loose_from_topology(topology: &Topology) -> Self {
        let mut table = Self::new();
        for info in topology.ases() {
            for prefix in &info.prefixes {
                table.insert(Roa { prefix: *prefix, origin: info.asn, max_length: 32 });
            }
        }
        table
    }

    /// RFC 6811 validation: `NotFound` when no ROA covers the prefix,
    /// `Valid` when some covering ROA matches both origin and length,
    /// `Invalid` otherwise.
    pub fn validity(&self, prefix: &Ipv4Prefix, origin: Asn) -> RpkiValidity {
        let mut covered = false;
        for roa in &self.roas {
            if !roa.prefix.contains(prefix) {
                continue;
            }
            covered = true;
            if roa.origin == origin && prefix.length() <= roa.max_length {
                return RpkiValidity::Valid;
            }
        }
        if covered {
            RpkiValidity::Invalid
        } else {
            RpkiValidity::NotFound
        }
    }
}

/// Community scrubbing configuration for one AS: strip and/or rewrite
/// classic communities on routes it propagates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommunityScrub {
    /// Drop every classic community on export.
    pub strip_all: bool,
    /// Specific communities to strip on export.
    pub strip: Vec<Community>,
    /// `(from, to)` rewrites applied on export (after stripping).
    pub rewrite: Vec<(Community, Community)>,
}

impl CommunityScrub {
    pub fn is_noop(&self) -> bool {
        !self.strip_all && self.strip.is_empty() && self.rewrite.is_empty()
    }
}

/// The per-AS policy knob set. Every knob defaults to off; an all-off
/// policy compiles to no extensions at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsPolicy {
    /// RFC 6811 route-origin validation: drop RPKI-Invalid imports
    /// (validated against the table-wide [`RoaTable`]).
    pub rov: bool,
    /// Peerlock-lite: drop routes carrying a Tier-1 ASN when learned
    /// from a customer or (non-Tier-1) peer — such a path always
    /// implies a route leak under valley-free export.
    pub peerlock_lite: bool,
    /// RFC 9234-style Only-to-Customers: mark routes learned from
    /// providers/peers and drop marked routes arriving from customers
    /// or peers (a leak already happened upstream).
    pub only_to_customers: bool,
    /// Path-end validation: the last hop before the origin must be a
    /// real topology neighbor of the origin.
    pub path_end: bool,
    /// Community strip/rewrite applied on export.
    pub scrub: Option<CommunityScrub>,
    /// Deliberate misbehavior: export every best route to every
    /// neighbor, ignoring the valley-free `may_export` rule. Used by
    /// the route-leak workloads; never a defense.
    pub leaker: bool,
}

impl AsPolicy {
    /// True when every knob is off — such a policy is not compiled.
    pub fn is_empty(&self) -> bool {
        !self.rov
            && !self.peerlock_lite
            && !self.only_to_customers
            && !self.path_end
            && self.scrub.as_ref().is_none_or(CommunityScrub::is_noop)
            && !self.leaker
    }
}

/// The deployment-wide policy configuration: per-AS knobs plus the
/// shared ROA registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyTable {
    per_as: BTreeMap<Asn, AsPolicy>,
    roas: RoaTable,
}

impl PolicyTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no AS has any knob on and no ROAs are loaded — the
    /// simulator treats installing such a table as installing nothing.
    pub fn is_empty(&self) -> bool {
        self.roas.is_empty() && self.per_as.values().all(AsPolicy::is_empty)
    }

    pub fn set_roas(&mut self, roas: RoaTable) {
        self.roas = roas;
    }

    pub fn roas(&self) -> &RoaTable {
        &self.roas
    }

    pub fn set(&mut self, asn: Asn, policy: AsPolicy) {
        self.per_as.insert(asn, policy);
    }

    pub fn policy(&self, asn: Asn) -> Option<&AsPolicy> {
        self.per_as.get(&asn)
    }

    /// Mutable per-AS entry, created all-off on first touch.
    pub fn entry(&mut self, asn: Asn) -> &mut AsPolicy {
        self.per_as.entry(asn).or_default()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Asn, &AsPolicy)> + '_ {
        self.per_as.iter().map(|(a, p)| (*a, p))
    }

    /// Number of ASes with at least one knob on.
    pub fn deployed_count(&self) -> usize {
        self.per_as.values().filter(|p| !p.is_empty()).count()
    }

    /// ASNs eligible for an ROV deployment sweep: every Tier-1 and
    /// mid-tier transit network, sorted by ASN. Stubs don't transit
    /// traffic, so deploying there never filters anyone else's routes.
    pub fn rov_candidates(topology: &Topology) -> Vec<Asn> {
        let mut candidates: Vec<Asn> = topology
            .ases()
            .filter(|info| matches!(info.tier, Tier::Tier1 | Tier::Transit))
            .map(|info| info.asn)
            .collect();
        candidates.sort_unstable();
        candidates
    }

    /// Turn ROV on at the first `ceil(fraction * N)` of
    /// [`rov_candidates`](Self::rov_candidates). Deployments at
    /// growing fractions are *nested by construction* (a prefix of the
    /// same sorted list), which is what makes "detected blackholes are
    /// non-increasing in the deployment fraction" a theorem rather
    /// than a tendency. Returns the newly deployed ASNs.
    pub fn deploy_rov_fraction(&mut self, topology: &Topology, fraction: f64) -> Vec<Asn> {
        let candidates = Self::rov_candidates(topology);
        let n = (fraction.clamp(0.0, 1.0) * candidates.len() as f64).ceil() as usize;
        let deployed: Vec<Asn> = candidates.into_iter().take(n).collect();
        for asn in &deployed {
            self.entry(*asn).rov = true;
        }
        deployed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn roa_validity_follows_rfc6811() {
        let mut table = RoaTable::new();
        table.insert(Roa { prefix: p("10.0.0.0/16"), origin: Asn(65001), max_length: 24 });

        // Uncovered space is NotFound.
        assert_eq!(table.validity(&p("192.0.2.0/24"), Asn(65001)), RpkiValidity::NotFound);
        // Right origin within max_length is Valid.
        assert_eq!(table.validity(&p("10.0.0.0/16"), Asn(65001)), RpkiValidity::Valid);
        assert_eq!(table.validity(&p("10.0.1.0/24"), Asn(65001)), RpkiValidity::Valid);
        // Too specific (the RTBH host route) is Invalid even for the
        // authorized origin.
        assert_eq!(table.validity(&p("10.0.1.1/32"), Asn(65001)), RpkiValidity::Invalid);
        // Wrong origin is Invalid at any length.
        assert_eq!(table.validity(&p("10.0.0.0/16"), Asn(65002)), RpkiValidity::Invalid);
    }

    #[test]
    fn empty_policy_detection() {
        let mut table = PolicyTable::new();
        assert!(table.is_empty());
        // Touching an entry without flipping a knob keeps it empty.
        table.entry(Asn(65001));
        assert!(table.is_empty());
        table.entry(Asn(65001)).rov = true;
        assert!(!table.is_empty());
        assert_eq!(table.deployed_count(), 1);
    }

    #[test]
    fn noop_scrub_is_empty() {
        let mut policy = AsPolicy { scrub: Some(CommunityScrub::default()), ..AsPolicy::default() };
        assert!(policy.is_empty());
        policy.scrub = Some(CommunityScrub { strip_all: true, ..CommunityScrub::default() });
        assert!(!policy.is_empty());
    }
}
