//! Network-type classification: PeeringDB-style declared records with a
//! CAIDA-style inference fallback.
//!
//! §4.1: "We group the networks … according to their declared network type
//! in the PeeringDB database. If the network does not maintain a PeeringDB
//! record, or does not disclose its network type, we use CAIDA's AS
//! classification dataset." This module reproduces that two-stage lookup.

use crate::graph::Topology;
use crate::types::NetworkType;

use bh_bgp_types::asn::Asn;

/// The two-stage classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct Classifier;

/// Where a classification came from (for reporting/debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassificationSource {
    /// Declared type in a PeeringDB record.
    PeeringDb,
    /// CAIDA-style degree/structure inference.
    CaidaInference,
}

impl Classifier {
    /// Classify an AS: PeeringDB declared type when available, else a
    /// degree-based inference in the spirit of CAIDA's classifier
    /// (transit if it has customers; content/enterprise/edu stubs keep
    /// their coarse class when structure hints at it; otherwise unknown).
    pub fn classify(&self, topology: &Topology, asn: Asn) -> (NetworkType, ClassificationSource) {
        let Some(info) = topology.as_info(asn) else {
            return (NetworkType::Unknown, ClassificationSource::CaidaInference);
        };

        // Stage 1: PeeringDB declared type.
        if info.in_peeringdb {
            return (info.network_type, ClassificationSource::PeeringDb);
        }

        // Stage 2: CAIDA-style inference from graph structure. This is a
        // *lossy* view of ground truth: the inference can mis-classify,
        // exactly like the real fallback.
        let degrees = topology.degrees(asn);
        let inferred = if topology.ixp_by_route_server(asn).is_some() {
            NetworkType::Ixp
        } else if degrees.customers > 0 {
            NetworkType::TransitAccess
        } else if degrees.peers + degrees.route_servers >= 3 {
            // Heavily peering stubs are overwhelmingly content/hosters.
            NetworkType::Content
        } else if degrees.providers >= 2 {
            // Multihomed stub with no peering: enterprise-ish.
            NetworkType::Enterprise
        } else {
            NetworkType::Unknown
        };
        (inferred, ClassificationSource::CaidaInference)
    }

    /// Classification without provenance.
    pub fn network_type(&self, topology: &Topology, asn: Asn) -> NetworkType {
        self.classify(topology, asn).0
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use crate::types::{AsInfo, Ixp, IxpId, Relationship, Tier};

    use super::*;

    fn mk_as(asn: u32, ty: NetworkType, in_pdb: bool) -> AsInfo {
        AsInfo {
            asn: Asn::new(asn),
            tier: Tier::Stub,
            network_type: ty,
            country: "US",
            prefixes: vec![],
            blackhole_offering: None,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: in_pdb,
        }
    }

    fn topology() -> Topology {
        let mut ases = BTreeMap::new();
        ases.insert(Asn::new(1), mk_as(1, NetworkType::TransitAccess, true));
        ases.insert(Asn::new(2), mk_as(2, NetworkType::Content, false)); // hidden hoster
        ases.insert(Asn::new(3), mk_as(3, NetworkType::Enterprise, false));
        ases.insert(Asn::new(4), mk_as(4, NetworkType::TransitAccess, false));
        ases.insert(Asn::new(5), mk_as(5, NetworkType::Unknown, false));
        ases.insert(Asn::new(6), mk_as(6, NetworkType::Content, true));
        ases.insert(Asn::new(7), mk_as(7, NetworkType::TransitAccess, true));
        ases.insert(Asn::new(8), mk_as(8, NetworkType::TransitAccess, true));
        ases.insert(Asn::new(9), mk_as(9, NetworkType::Ixp, false));
        let edges = vec![
            // AS4 has a customer (AS5) → inferred transit.
            (Asn::new(4), Asn::new(5), Relationship::Customer),
            // AS2 peers widely → inferred content.
            (Asn::new(2), Asn::new(1), Relationship::Peer),
            (Asn::new(2), Asn::new(6), Relationship::Peer),
            (Asn::new(2), Asn::new(7), Relationship::Peer),
            // AS3 is multihomed, no peers → inferred enterprise.
            (Asn::new(3), Asn::new(1), Relationship::Provider),
            (Asn::new(3), Asn::new(4), Relationship::Provider),
        ];
        let ixp = Ixp {
            id: IxpId(0),
            name: "IX".into(),
            route_server_asn: Asn::new(9),
            route_server_in_path: true,
            peering_lan: "185.1.0.0/24".parse().unwrap(),
            members: vec![],
            country: "DE",
        };
        Topology::assemble(ases, edges, vec![ixp])
    }

    #[test]
    fn peeringdb_declared_type_wins() {
        let t = topology();
        let c = Classifier;
        assert_eq!(
            c.classify(&t, Asn::new(1)),
            (NetworkType::TransitAccess, ClassificationSource::PeeringDb)
        );
        assert_eq!(
            c.classify(&t, Asn::new(6)),
            (NetworkType::Content, ClassificationSource::PeeringDb)
        );
    }

    #[test]
    fn fallback_infers_transit_from_customers() {
        let t = topology();
        assert_eq!(
            Classifier.classify(&t, Asn::new(4)),
            (NetworkType::TransitAccess, ClassificationSource::CaidaInference)
        );
    }

    #[test]
    fn fallback_infers_content_from_peering() {
        let t = topology();
        assert_eq!(
            Classifier.classify(&t, Asn::new(2)),
            (NetworkType::Content, ClassificationSource::CaidaInference)
        );
    }

    #[test]
    fn fallback_infers_enterprise_from_multihoming() {
        let t = topology();
        assert_eq!(
            Classifier.classify(&t, Asn::new(3)),
            (NetworkType::Enterprise, ClassificationSource::CaidaInference)
        );
    }

    #[test]
    fn fallback_infers_ixp_from_route_server() {
        let t = topology();
        assert_eq!(Classifier.network_type(&t, Asn::new(9)), NetworkType::Ixp);
    }

    #[test]
    fn isolated_undisclosed_as_is_unknown() {
        let t = topology();
        assert_eq!(Classifier.network_type(&t, Asn::new(5)), NetworkType::Unknown);
        assert_eq!(Classifier.network_type(&t, Asn::new(404)), NetworkType::Unknown);
    }
}
