//! Seeded topology generator.
//!
//! Builds a synthetic Internet whose *composition* mirrors the populations
//! the paper measures: a tier-1 clique, a transit hierarchy, stub networks
//! of every PeeringDB type, IXPs with route servers and peering LANs, and
//! — crucially — a ground-truth set of blackholing providers whose
//! distribution follows Table 2:
//!
//! | type            | documented | inferred (undocumented) |
//! |-----------------|-----------:|------------------------:|
//! | Transit/Access  |        198 |                      81 |
//! | IXP             |         49 |                       0 |
//! | Content         |         23 |                      14 |
//! | Educ/Res/NfP    |         15 |                       1 |
//! | Enterprise      |          8 |                       3 |
//! | Unknown         |         14 |                       3 |
//!
//! Community conventions follow §4.1: ~51 % `ASN:666`, the rest `ASN:66`,
//! `ASN:999`, `ASN:9999`…; 47 of 49 IXPs use RFC 7999 `65535:666`; a few
//! providers share ambiguous communities whose high 16 bits are not a
//! public ASN; one network blackholes via an RFC 8092 large community; and
//! one tier-1 uses `ASN:666` as a *peering tag* while blackholing with
//! `ASN:9999` (the Level3 decoy).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};

use crate::addressing::AddressAllocator;
use crate::geo::{
    sample_country, IXP_COUNTRY_WEIGHTS, PROVIDER_COUNTRY_WEIGHTS, USER_COUNTRY_WEIGHTS,
};
use crate::graph::Topology;
use crate::types::{
    classic_community, AsInfo, BlackholeAuth, BlackholeOffering, DocumentationChannel, Ixp, IxpId,
    LargeTag, NetworkType, Relationship, TagClass, Tier,
};

/// Per-type counts of blackholing providers, split documented/undocumented.
#[derive(Debug, Clone, Copy)]
pub struct ProviderCounts {
    /// Providers whose offering is documented (IRR/web/private).
    pub documented: usize,
    /// Providers whose offering is undocumented (only inferable).
    pub undocumented: usize,
}

/// Generator configuration. `Default` reproduces the paper-scale study
/// populations; tests use [`TopologyConfig::tiny`] for speed.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// RNG seed — everything downstream is deterministic in this.
    pub seed: u64,
    /// Number of tier-1 ASes (full clique).
    pub tier1_count: usize,
    /// Number of mid-tier transit/access ASes.
    pub transit_count: usize,
    /// Number of content/hoster stub ASes.
    pub content_count: usize,
    /// Number of enterprise stub ASes.
    pub enterprise_count: usize,
    /// Number of education/research/NfP ASes.
    pub edu_count: usize,
    /// Number of unclassifiable ASes.
    pub unknown_count: usize,
    /// Number of IXPs.
    pub ixp_count: usize,
    /// Blackholing providers per type (Table 2 shape).
    pub bh_transit: ProviderCounts,
    /// IXPs offering blackholing (documented only, per the paper).
    pub bh_ixp: usize,
    /// Content providers offering blackholing.
    pub bh_content: ProviderCounts,
    /// Educ/Research/NfP providers offering blackholing.
    pub bh_edu: ProviderCounts,
    /// Enterprise providers offering blackholing.
    pub bh_enterprise: ProviderCounts,
    /// Unknown-type providers offering blackholing.
    pub bh_unknown: ProviderCounts,
    /// Fraction of ASes with a PeeringDB record disclosing their type.
    pub peeringdb_coverage: f64,
    /// CAIDA-serial-2-shaped growth: customers attach to transit
    /// providers preferentially by current customer degree (rich get
    /// richer → power-law degree distribution, like the real AS graph)
    /// instead of uniformly, and stub address space is packed densely so
    /// the allocator scales to ~75k ASes. Off by default — the
    /// paper-study and tiny shapes are byte-identical with it off.
    pub power_law_degrees: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x1997_0666,
            tier1_count: 14,
            transit_count: 430,
            content_count: 330,
            enterprise_count: 160,
            edu_count: 80,
            unknown_count: 90,
            ixp_count: 55,
            bh_transit: ProviderCounts { documented: 198, undocumented: 81 },
            bh_ixp: 49,
            bh_content: ProviderCounts { documented: 23, undocumented: 14 },
            bh_edu: ProviderCounts { documented: 15, undocumented: 1 },
            bh_enterprise: ProviderCounts { documented: 8, undocumented: 3 },
            bh_unknown: ProviderCounts { documented: 14, undocumented: 3 },
            peeringdb_coverage: 0.72,
            power_law_degrees: false,
        }
    }
}

impl TopologyConfig {
    /// A small topology for fast tests: same structure, ~60 ASes.
    pub fn tiny(seed: u64) -> Self {
        TopologyConfig {
            seed,
            tier1_count: 4,
            transit_count: 14,
            content_count: 18,
            enterprise_count: 8,
            edu_count: 4,
            unknown_count: 4,
            ixp_count: 4,
            bh_transit: ProviderCounts { documented: 8, undocumented: 3 },
            bh_ixp: 3,
            bh_content: ProviderCounts { documented: 2, undocumented: 1 },
            bh_edu: ProviderCounts { documented: 1, undocumented: 0 },
            bh_enterprise: ProviderCounts { documented: 1, undocumented: 0 },
            bh_unknown: ProviderCounts { documented: 1, undocumented: 0 },
            peeringdb_coverage: 0.72,
            power_law_degrees: false,
        }
    }

    /// The CAIDA-serial-2-shaped internet: ~75k ASes with power-law
    /// customer degrees, a 20-member tier-1 clique, and ~190 IXPs. The
    /// scale where propagation-engine claims become falsifiable.
    pub fn massive(seed: u64) -> Self {
        Self::massive_scaled(seed, 75_000)
    }

    /// [`TopologyConfig::massive`] at a chosen AS count (≥500; smoke
    /// tests and CI run the same shape a couple of orders of magnitude
    /// smaller). Type proportions follow the CAIDA serial-2 mix; the
    /// Table-2 blackholing populations shrink proportionally but never
    /// exceed the paper's absolute counts.
    pub fn massive_scaled(seed: u64, total_ases: usize) -> Self {
        let total = total_ases.max(500);
        let tier1_count = 20;
        let transit_count = (total * 6 / 100).max(40);
        let content_count = total * 25 / 100;
        let edu_count = total * 8 / 100;
        let unknown_count = total * 12 / 100;
        let enterprise_count =
            total - tier1_count - transit_count - content_count - edu_count - unknown_count;
        let ixp_count = (total / 400).clamp(4, 200);
        // Scale a Table-2 count with the graph, floor 1, cap at the
        // paper's real-internet absolute.
        let scale = |n: usize| (n * total / 75_000).clamp(1, n);
        TopologyConfig {
            seed,
            tier1_count,
            transit_count,
            content_count,
            enterprise_count,
            edu_count,
            unknown_count,
            ixp_count,
            bh_transit: ProviderCounts { documented: scale(198), undocumented: scale(81) },
            bh_ixp: scale(49).min(ixp_count),
            bh_content: ProviderCounts { documented: scale(23), undocumented: scale(14) },
            bh_edu: ProviderCounts { documented: scale(15), undocumented: scale(1) },
            bh_enterprise: ProviderCounts { documented: scale(8), undocumented: scale(3) },
            bh_unknown: ProviderCounts { documented: scale(14), undocumented: scale(3) },
            peeringdb_coverage: 0.72,
            power_law_degrees: true,
        }
    }

    /// Total AS count (excluding IXP route-server ASNs).
    pub fn total_ases(&self) -> usize {
        self.tier1_count
            + self.transit_count
            + self.content_count
            + self.enterprise_count
            + self.edu_count
            + self.unknown_count
    }
}

/// The generator.
pub struct TopologyBuilder {
    config: TopologyConfig,
    rng: StdRng,
    alloc: AddressAllocator,
    next_asn: u32,
    next_rs_asn: u32,
}

impl TopologyBuilder {
    /// Create a builder.
    pub fn new(config: TopologyConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        // At massive scale the regular ASN walk (~10.5 step average)
        // climbs well past 59k, so route-server ASNs move out of its way;
        // the historical base is kept for the paper-scale shapes so their
        // generated topologies stay byte-identical.
        let next_rs_asn = if config.power_law_degrees { 3_000_000 } else { 59_000 };
        TopologyBuilder { config, rng, alloc: AddressAllocator::new(), next_asn: 100, next_rs_asn }
    }

    /// Convenience: default config with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(TopologyConfig { seed, ..Default::default() })
    }

    fn fresh_asn(&mut self) -> Asn {
        let asn = Asn::new(self.next_asn);
        // Skip anything non-public so communities stay unambiguous unless
        // we *choose* ambiguity.
        self.next_asn += 1 + self.rng.gen_range(0..20);
        if !asn.is_public() {
            return self.fresh_asn();
        }
        asn
    }

    fn fresh_rs_asn(&mut self) -> Asn {
        let asn = Asn::new(self.next_rs_asn);
        self.next_rs_asn += 1;
        asn
    }

    /// Allocate an AS prefix: slab-granular normally, packed in the
    /// massive shape (where one slab per prefix would exhaust the space).
    fn alloc_prefix(&mut self, length: u8) -> bh_bgp_types::prefix::Ipv4Prefix {
        if self.config.power_law_degrees {
            self.alloc.alloc_packed(length)
        } else {
            self.alloc.alloc(length)
        }
    }

    /// Build the topology.
    pub fn build(mut self) -> Topology {
        let cfg = self.config.clone();
        let mut ases: BTreeMap<Asn, AsInfo> = BTreeMap::new();
        let mut edges: Vec<(Asn, Asn, Relationship)> = Vec::new();

        // ---- Tier-1 clique -------------------------------------------------
        let mut tier1 = Vec::with_capacity(cfg.tier1_count);
        for _ in 0..cfg.tier1_count {
            let asn = self.fresh_asn();
            let prefix_count = self.rng.gen_range(3..=6);
            let prefixes =
                (0..prefix_count).map(|_| self.alloc.alloc(self.rng.gen_range(11..=14))).collect();
            ases.insert(
                asn,
                AsInfo {
                    asn,
                    tier: Tier::Tier1,
                    network_type: NetworkType::TransitAccess,
                    country: sample_country(&mut self.rng, PROVIDER_COUNTRY_WEIGHTS),
                    prefixes,
                    blackhole_offering: None,
                    tag_communities: vec![],
                    tag_classes: vec![],
                    tag_large_communities: vec![],
                    in_peeringdb: true, // tier-1s always have records
                },
            );
            tier1.push(asn);
        }
        for i in 0..tier1.len() {
            for j in (i + 1)..tier1.len() {
                edges.push((tier1[i], tier1[j], Relationship::Peer));
            }
        }

        // ---- Mid-tier transit ----------------------------------------------
        let mut transits = Vec::with_capacity(cfg.transit_count);
        // Preferential-attachment endpoint pool (massive shape only):
        // every transit appears once at creation plus once per customer
        // edge it acquires, so a uniform draw from the pool is
        // degree-proportional — the Barabási–Albert process that gives
        // the AS graph its power-law customer degrees.
        let mut attach_pool: Vec<Asn> = Vec::new();
        for _ in 0..cfg.transit_count {
            let asn = self.fresh_asn();
            let prefix_count = self.rng.gen_range(1..=3);
            let prefixes = (0..prefix_count)
                .map(|_| {
                    let len = self.rng.gen_range(14..=18);
                    self.alloc_prefix(len)
                })
                .collect();
            // Providers: preferential mix of tier-1 and earlier transits.
            let provider_count = self.rng.gen_range(1..=3).min(1 + transits.len());
            let mut providers: Vec<Asn> = Vec::new();
            for _ in 0..provider_count {
                let from_tier1 = transits.len() < 4 || self.rng.gen_bool(0.45);
                let pool: &[Asn] = if from_tier1 {
                    &tier1
                } else if cfg.power_law_degrees {
                    &attach_pool
                } else {
                    &transits
                };
                if let Some(&p) = pool.choose(&mut self.rng) {
                    if !providers.contains(&p) && p != asn {
                        providers.push(p);
                    }
                }
            }
            for p in &providers {
                edges.push((*p, asn, Relationship::Customer));
                if cfg.power_law_degrees && !tier1.contains(p) {
                    attach_pool.push(*p);
                }
            }
            // Occasional lateral peering among transits.
            if !transits.is_empty() && self.rng.gen_bool(0.35) {
                if let Some(&peer) = transits.choose(&mut self.rng) {
                    if peer != asn {
                        edges.push((asn, peer, Relationship::Peer));
                    }
                }
            }
            ases.insert(
                asn,
                AsInfo {
                    asn,
                    tier: Tier::Transit,
                    network_type: NetworkType::TransitAccess,
                    country: sample_country(&mut self.rng, PROVIDER_COUNTRY_WEIGHTS),
                    prefixes,
                    blackhole_offering: None,
                    tag_communities: vec![],
                    tag_classes: vec![],
                    tag_large_communities: vec![],
                    in_peeringdb: self.rng.gen_bool(cfg.peeringdb_coverage),
                },
            );
            transits.push(asn);
            attach_pool.push(asn);
        }

        // ---- Stubs of each type --------------------------------------------
        let stub_of = |builder: &mut Self,
                       ty: NetworkType,
                       count: usize,
                       ases: &mut BTreeMap<Asn, AsInfo>,
                       edges: &mut Vec<(Asn, Asn, Relationship)>,
                       attach_pool: &mut Vec<Asn>|
         -> Vec<Asn> {
            let mut out = Vec::with_capacity(count);
            let power_law = builder.config.power_law_degrees;
            for _ in 0..count {
                let asn = builder.fresh_asn();
                let (min_len, max_len, max_prefixes) = match ty {
                    NetworkType::Content => (17, 21, 2), // hosters: midsize blocks
                    NetworkType::EducationResearchNfp => (15, 17, 1),
                    _ => (19, 23, 2),
                };
                let prefix_count = builder.rng.gen_range(1..=max_prefixes);
                let prefixes = (0..prefix_count)
                    .map(|_| {
                        let len = builder.rng.gen_range(min_len..=max_len);
                        builder.alloc_prefix(len)
                    })
                    .collect();
                let provider_count = builder.rng.gen_range(1..=3usize);
                let mut chosen = Vec::new();
                for _ in 0..provider_count {
                    let pool: &[Asn] = if power_law { &attach_pool[..] } else { &transits[..] };
                    if let Some(&p) = pool.choose(&mut builder.rng) {
                        if !chosen.contains(&p) {
                            chosen.push(p);
                        }
                    }
                }
                for p in &chosen {
                    edges.push((*p, asn, Relationship::Customer));
                    if power_law {
                        attach_pool.push(*p);
                    }
                }
                let weights = if ty == NetworkType::TransitAccess {
                    PROVIDER_COUNTRY_WEIGHTS
                } else {
                    USER_COUNTRY_WEIGHTS
                };
                ases.insert(
                    asn,
                    AsInfo {
                        asn,
                        tier: Tier::Stub,
                        network_type: ty,
                        country: sample_country(&mut builder.rng, weights),
                        prefixes,
                        blackhole_offering: None,
                        tag_communities: vec![],
                        tag_classes: vec![],
                        tag_large_communities: vec![],
                        in_peeringdb: builder.rng.gen_bool(if ty == NetworkType::Unknown {
                            0.0 // unknowns are unknown *because* they lack records
                        } else {
                            cfg.peeringdb_coverage
                        }),
                    },
                );
                out.push(asn);
            }
            out
        };

        let contents = stub_of(
            &mut self,
            NetworkType::Content,
            cfg.content_count,
            &mut ases,
            &mut edges,
            &mut attach_pool,
        );
        let enterprises = stub_of(
            &mut self,
            NetworkType::Enterprise,
            cfg.enterprise_count,
            &mut ases,
            &mut edges,
            &mut attach_pool,
        );
        let edus = stub_of(
            &mut self,
            NetworkType::EducationResearchNfp,
            cfg.edu_count,
            &mut ases,
            &mut edges,
            &mut attach_pool,
        );
        let unknowns = stub_of(
            &mut self,
            NetworkType::Unknown,
            cfg.unknown_count,
            &mut ases,
            &mut edges,
            &mut attach_pool,
        );

        // ---- IXPs ----------------------------------------------------------
        let mut ixps = Vec::with_capacity(cfg.ixp_count);
        // Candidate members: content networks peer most aggressively, then
        // transit/access; enterprises rarely.
        let mut member_pool: Vec<Asn> = Vec::new();
        member_pool.extend(&contents);
        member_pool.extend(&transits);
        member_pool.extend(&contents); // double weight for content
        member_pool.extend(&edus);
        member_pool.extend(&enterprises);
        for i in 0..cfg.ixp_count {
            let rs_asn = self.fresh_rs_asn();
            let lan = self.alloc.alloc_lan();
            let country = sample_country(&mut self.rng, IXP_COUNTRY_WEIGHTS);
            // Size distribution: a few giants, many small exchanges.
            let member_count = if i < cfg.ixp_count / 8 {
                self.rng.gen_range(120..=200.min(member_pool.len().max(121) - 1))
            } else if i < cfg.ixp_count / 3 {
                self.rng.gen_range(25..=80)
            } else {
                self.rng.gen_range(4..=20)
            };
            let mut members: Vec<Asn> = member_pool
                .choose_multiple(&mut self.rng, member_count.min(member_pool.len()))
                .copied()
                .collect();
            members.sort_unstable();
            members.dedup();
            let id = IxpId(i as u32);
            // Route-server AS entry.
            ases.insert(
                rs_asn,
                AsInfo {
                    asn: rs_asn,
                    tier: Tier::Stub,
                    network_type: NetworkType::Ixp,
                    country,
                    prefixes: vec![],
                    blackhole_offering: None,
                    tag_communities: vec![],
                    tag_classes: vec![],
                    tag_large_communities: vec![],
                    in_peeringdb: true, // IXPs maintain records (LANs are published)
                },
            );
            for m in &members {
                edges.push((*m, rs_asn, Relationship::RouteServer));
            }
            // Some bilateral peering among members of the same IXP.
            let bilateral = members.len() / 4;
            for _ in 0..bilateral {
                if let (Some(&a), Some(&b)) =
                    (members.choose(&mut self.rng), members.choose(&mut self.rng))
                {
                    if a != b {
                        edges.push((a, b, Relationship::Peer));
                    }
                }
            }
            ixps.push(Ixp {
                id,
                name: format!("IX-{i:02}-{country}"),
                route_server_asn: rs_asn,
                route_server_in_path: self.rng.gen_bool(0.7),
                peering_lan: lan,
                members,
                country,
            });
        }

        // ---- Blackhole offerings (ground truth) ----------------------------
        self.assign_offerings(
            &mut ases,
            &ixps,
            &tier1,
            &transits,
            &contents,
            &edus,
            &enterprises,
            &unknowns,
        );

        // ---- Non-blackhole tag communities ----------------------------------
        // Transit networks tag customer/peer routes; this census is the
        // "other communities" population of Fig. 2.
        let transit_asns: Vec<Asn> = tier1.iter().chain(&transits).copied().collect();
        for asn in &transit_asns {
            let info = ases.get_mut(asn).expect("transit AS exists");
            let n_tags = self.rng.gen_range(1..=4);
            for k in 0..n_tags {
                let (value, class) = match k {
                    // relationship tags
                    0 => (100 + self.rng.gen_range(0..10), TagClass::Informational),
                    // location tags
                    1 => (2000 + self.rng.gen_range(0..50), TagClass::Location),
                    // TE tags
                    _ => (3000 + self.rng.gen_range(0..100), TagClass::Action),
                };
                match classic_community(*asn, value as u16) {
                    Some(c) => {
                        info.tag_communities.push(c);
                        info.tag_classes.push(class);
                    }
                    // 32-bit ASN (massive topologies): RFC 8092 form.
                    None => info.tag_large_communities.push(LargeTag {
                        community: LargeCommunity::new(asn.value(), value as u32, k as u32),
                        class,
                    }),
                }
            }
        }

        Topology::assemble(ases, edges, ixps)
    }

    /// Pick a blackhole community value following the §4.1 conventions.
    fn trigger_value(&mut self) -> u16 {
        let roll: f64 = self.rng.gen();
        if roll < 0.51 {
            666
        } else if roll < 0.66 {
            66
        } else if roll < 0.81 {
            999
        } else if roll < 0.91 {
            9999
        } else {
            self.rng.gen_range(600..700)
        }
    }

    /// Pick a blackhole trigger for `asn`: classic `ASN:value` for 16-bit
    /// ASNs, RFC 8092 large `ASN:value:0` for 32-bit ASNs (which have no
    /// classic encoding).
    fn trigger_for(&mut self, asn: Asn) -> (Option<Community>, Option<LargeCommunity>) {
        let value = self.trigger_value();
        match classic_community(asn, value) {
            Some(c) => (Some(c), None),
            None => (None, Some(LargeCommunity::new(asn.value(), u32::from(value), 0))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assign_offerings(
        &mut self,
        ases: &mut BTreeMap<Asn, AsInfo>,
        ixps: &[Ixp],
        tier1: &[Asn],
        transits: &[Asn],
        contents: &[Asn],
        edus: &[Asn],
        enterprises: &[Asn],
        unknowns: &[Asn],
    ) {
        let cfg = self.config.clone();

        // Shared ambiguous communities: a handful of transit providers
        // share community values whose high 16 bits are not a public ASN
        // (the paper's 0:666 / 65535-style cases).
        let shared_pool = [Community::from_parts(0, 666), Community::from_parts(64999, 666)];
        let mut shared_assigned = 0usize;

        // Transit/access providers: tier-1s first (the paper found 13
        // tier-1s with blackhole communities), then mid-tier.
        let mut transit_order: Vec<Asn> = tier1.to_vec();
        transit_order.extend(transits.iter().copied());
        let total_transit_bh = cfg.bh_transit.documented + cfg.bh_transit.undocumented;
        let selected: Vec<Asn> = transit_order.into_iter().take(total_transit_bh).collect();
        for (i, asn) in selected.iter().enumerate() {
            let documented = i < cfg.bh_transit.documented;
            // ~10% of documented transit offerings get a regional second
            // community (223 communities / 198 networks in Table 2).
            let mut communities = Vec::new();
            let mut large_community = None;
            if i == 0 {
                // The Level3 decoy: blackhole with ASN:9999, use ASN:666 as
                // a peering tag (added to tag_communities below).
                match classic_community(*asn, 9999) {
                    Some(c) => communities.push(c),
                    None => large_community = Some(LargeCommunity::new(asn.value(), 9999, 0)),
                }
            } else if shared_assigned < 4 && documented && self.rng.gen_bool(0.08) {
                communities.push(shared_pool[shared_assigned % shared_pool.len()]);
                shared_assigned += 1;
            } else if i == 1 && documented {
                // The single large-community blackholer (RFC 8092).
                large_community = Some(LargeCommunity::new(asn.value(), 666, 0));
                let (classic, _) = self.trigger_for(*asn);
                communities.extend(classic);
            } else {
                let (classic, large) = self.trigger_for(*asn);
                communities.extend(classic);
                large_community = large_community.or(large);
            }
            if documented && self.rng.gen_bool(0.10) {
                // Regional variant (e.g. blackhole only in EU). 32-bit
                // providers are large-community-only and get no variant.
                if let Some(&base) = communities.first() {
                    communities.push(Community::from_parts(
                        base.asn_part(),
                        base.value_part().wrapping_add(1),
                    ));
                }
            }
            let documentation = if !documented {
                DocumentationChannel::Undocumented
            } else {
                // IRR is the largest source, then web pages, then private.
                let roll: f64 = self.rng.gen();
                if roll < 0.62 {
                    DocumentationChannel::Irr
                } else if roll < 0.97 {
                    DocumentationChannel::WebPage
                } else {
                    DocumentationChannel::Private
                }
            };
            let auth = match self.rng.gen_range(0..10) {
                0 => BlackholeAuth::Rpki,
                1 | 2 => BlackholeAuth::IrrRegistered,
                _ => BlackholeAuth::OriginOrCone,
            };
            let info = ases.get_mut(asn).expect("selected AS exists");
            info.blackhole_offering = Some(BlackholeOffering {
                communities,
                large_community,
                min_accepted_length: if self.rng.gen_bool(0.85) { 25 } else { 22 },
                documentation,
                auth,
                blackhole_ip: None,
                strips_community: self.rng.gen_bool(0.25),
                honors_no_export: self.rng.gen_bool(0.4),
            });
            if i == 0 {
                // Attach the decoy peering tag.
                match classic_community(*asn, 666) {
                    Some(c) => {
                        info.tag_communities.push(c);
                        info.tag_classes.push(TagClass::Informational);
                    }
                    None => info.tag_large_communities.push(LargeTag {
                        community: LargeCommunity::new(asn.value(), 666, 1),
                        class: TagClass::Informational,
                    }),
                }
            }
        }

        // IXPs: 47/49 use RFC 7999; the rest share one legacy community.
        let legacy_ixps = (cfg.bh_ixp / 3).min(2);
        for (k, ixp) in ixps.iter().take(cfg.bh_ixp).enumerate() {
            let rfc7999 = k < cfg.bh_ixp - legacy_ixps;
            let communities = if rfc7999 {
                vec![Community::BLACKHOLE]
            } else {
                vec![Community::from_parts(65534, 666)]
            };
            let info = ases.get_mut(&ixp.route_server_asn).expect("route server AS exists");
            info.blackhole_offering = Some(BlackholeOffering {
                communities,
                large_community: None,
                min_accepted_length: 25,
                documentation: DocumentationChannel::Irr,
                auth: BlackholeAuth::IrrRegistered,
                blackhole_ip: Some(AddressAllocator::blackhole_ip(&ixp.peering_lan)),
                strips_community: false,
                honors_no_export: false,
            });
        }

        // Edge types.
        let assign_edge = |builder: &mut Self,
                           pool: &[Asn],
                           counts: crate::gen::ProviderCounts,
                           ases: &mut BTreeMap<Asn, AsInfo>| {
            let total = counts.documented + counts.undocumented;
            for (i, asn) in pool.iter().take(total).enumerate() {
                let documented = i < counts.documented;
                let documentation = if documented {
                    if builder.rng.gen_bool(0.6) {
                        DocumentationChannel::Irr
                    } else {
                        DocumentationChannel::WebPage
                    }
                } else {
                    DocumentationChannel::Undocumented
                };
                let (classic, large) = builder.trigger_for(*asn);
                let info = ases.get_mut(asn).expect("pool AS exists");
                info.blackhole_offering = Some(BlackholeOffering {
                    communities: classic.into_iter().collect(),
                    large_community: large,
                    min_accepted_length: 25,
                    documentation,
                    auth: BlackholeAuth::OriginOrCone,
                    blackhole_ip: None,
                    strips_community: builder.rng.gen_bool(0.3),
                    honors_no_export: builder.rng.gen_bool(0.4),
                });
            }
        };
        assign_edge(self, contents, cfg.bh_content, ases);
        assign_edge(self, edus, cfg.bh_edu, ases);
        assign_edge(self, enterprises, cfg.bh_enterprise, ases);
        assign_edge(self, unknowns, cfg.bh_unknown, ases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Classifier;

    fn build_tiny() -> Topology {
        TopologyBuilder::new(TopologyConfig::tiny(7)).build()
    }

    #[test]
    fn thirty_two_bit_asns_get_large_communities_not_truncated_classics() {
        // A transit-heavy walk that crosses the 16-bit ASN boundary (the
        // ASN stride averages ~10.5, so ASes past index ~6200 are 32-bit).
        // Before routing 32-bit providers through RFC 8092, two such ASes
        // aliasing mod 2^16 collided on one truncated `ASN:666`-style tag.
        let mut cfg = TopologyConfig::massive_scaled(7, 500);
        cfg.transit_count = 7_000;
        let t = TopologyBuilder::new(cfg).build();
        let shared = [Community::from_parts(0, 666), Community::from_parts(64_999, 666)];
        let mut high_tagged = 0usize;
        let mut high_offerings = 0usize;
        for info in t.ases() {
            if info.asn.value() <= u32::from(u16::MAX) || info.network_type == NetworkType::Ixp {
                continue;
            }
            // 32-bit ASes never own ASN-derived classic communities.
            assert!(info.tag_communities.is_empty(), "{} has truncated classic tags", info.asn);
            for tag in &info.tag_large_communities {
                assert_eq!(tag.community.asn(), info.asn);
                high_tagged += 1;
            }
            if let Some(o) = &info.blackhole_offering {
                assert!(
                    o.communities.iter().all(|c| shared.contains(c)),
                    "{} has a truncated classic trigger",
                    info.asn
                );
                if let Some(l) = o.large_community {
                    assert_eq!(l.asn(), info.asn);
                    high_offerings += 1;
                }
            }
        }
        assert!(high_tagged > 0, "no 32-bit AS received large tags");
        assert!(high_offerings > 0, "no 32-bit AS received a large trigger");
    }

    #[test]
    fn classic_community_refuses_32_bit_asns() {
        // Two ASNs that alias mod 2^16 — the collision the truncation
        // produced.
        let a = Asn::new(70_000);
        let b = Asn::new(70_000 + 65_536);
        assert_eq!(classic_community(a, 666), None);
        assert_eq!(classic_community(b, 666), None);
        assert_eq!(classic_community(Asn::new(3356), 666), Some(Community::from_parts(3356, 666)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TopologyBuilder::new(TopologyConfig::tiny(42)).build();
        let b = TopologyBuilder::new(TopologyConfig::tiny(42)).build();
        let asns_a: Vec<_> = a.ases().map(|i| i.asn).collect();
        let asns_b: Vec<_> = b.ases().map(|i| i.asn).collect();
        assert_eq!(asns_a, asns_b);
        assert_eq!(a.blackholing_providers(), b.blackholing_providers());
        assert_eq!(a.ixps().len(), b.ixps().len());
        for (x, y) in a.ixps().iter().zip(b.ixps()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.peering_lan, y.peering_lan);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyBuilder::new(TopologyConfig::tiny(1)).build();
        let b = TopologyBuilder::new(TopologyConfig::tiny(2)).build();
        let asns_a: Vec<_> = a.ases().map(|i| i.asn).collect();
        let asns_b: Vec<_> = b.ases().map(|i| i.asn).collect();
        assert_ne!(asns_a, asns_b);
    }

    #[test]
    fn population_counts_match_config() {
        let cfg = TopologyConfig::tiny(7);
        let t = TopologyBuilder::new(cfg.clone()).build();
        assert_eq!(t.as_count(), cfg.total_ases() + cfg.ixp_count);
        assert_eq!(t.ixps().len(), cfg.ixp_count);
        assert_eq!(t.ases_of_type(NetworkType::Content).len(), cfg.content_count);
        assert_eq!(t.ases_of_type(NetworkType::Ixp).len(), cfg.ixp_count);
    }

    #[test]
    fn blackhole_provider_counts_match_table2_shape() {
        let cfg = TopologyConfig::tiny(7);
        let t = TopologyBuilder::new(cfg.clone()).build();
        let providers = t.blackholing_providers();
        let expect = cfg.bh_transit.documented
            + cfg.bh_transit.undocumented
            + cfg.bh_ixp
            + cfg.bh_content.documented
            + cfg.bh_content.undocumented
            + cfg.bh_edu.documented
            + cfg.bh_edu.undocumented
            + cfg.bh_enterprise.documented
            + cfg.bh_enterprise.undocumented
            + cfg.bh_unknown.documented
            + cfg.bh_unknown.undocumented;
        assert_eq!(providers.len(), expect);
    }

    #[test]
    fn default_config_reproduces_paper_totals() {
        let cfg = TopologyConfig::default();
        let documented = cfg.bh_transit.documented
            + cfg.bh_ixp
            + cfg.bh_content.documented
            + cfg.bh_edu.documented
            + cfg.bh_enterprise.documented
            + cfg.bh_unknown.documented;
        let undocumented = cfg.bh_transit.undocumented
            + cfg.bh_content.undocumented
            + cfg.bh_edu.undocumented
            + cfg.bh_enterprise.undocumented
            + cfg.bh_unknown.undocumented;
        assert_eq!(documented, 307); // Table 2 total
        assert_eq!(undocumented, 102); // inferred, in parentheses
    }

    #[test]
    fn tier1_clique_is_complete() {
        let t = build_tiny();
        let tier1: Vec<Asn> = t.ases().filter(|i| i.tier == Tier::Tier1).map(|i| i.asn).collect();
        for &a in &tier1 {
            for &b in &tier1 {
                if a != b {
                    assert!(t.peers_of(a).contains(&b), "{a} and {b} must peer");
                }
            }
        }
    }

    #[test]
    fn every_stub_has_a_provider() {
        let t = build_tiny();
        for info in t.ases() {
            if info.tier == Tier::Stub && info.network_type != NetworkType::Ixp {
                assert!(
                    !t.providers_of(info.asn).is_empty(),
                    "{} ({:?}) has no provider",
                    info.asn,
                    info.network_type
                );
            }
        }
    }

    #[test]
    fn everyone_can_reach_tier1() {
        // Connectivity: the provider cone of any non-IXP AS intersects tier-1.
        let t = build_tiny();
        let tier1: Vec<Asn> = t.ases().filter(|i| i.tier == Tier::Tier1).map(|i| i.asn).collect();
        for info in t.ases() {
            if info.network_type == NetworkType::Ixp {
                continue;
            }
            let cone = t.provider_cone(info.asn);
            assert!(
                tier1.iter().any(|asn| cone.contains(asn)),
                "{} cannot reach the core",
                info.asn
            );
        }
    }

    #[test]
    fn ixps_have_members_and_lans() {
        let t = build_tiny();
        for ixp in t.ixps() {
            assert!(!ixp.members.is_empty(), "{} has no members", ixp.name);
            assert_eq!(ixp.peering_lan.length(), 24);
            for &m in &ixp.members {
                assert!(t.as_info(m).is_some());
                // Route-server session edge exists.
                assert!(t
                    .neighbors(m)
                    .iter()
                    .any(|(n, r)| *n == ixp.route_server_asn && *r == Relationship::RouteServer));
            }
        }
    }

    #[test]
    fn ixp_offerings_use_rfc7999_majority() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(3)).build();
        let mut rfc = 0;
        let mut other = 0;
        for ixp in t.ixps() {
            if let Some(info) = t.as_info(ixp.route_server_asn) {
                if let Some(o) = &info.blackhole_offering {
                    if o.communities.contains(&Community::BLACKHOLE) {
                        rfc += 1;
                    } else {
                        other += 1;
                    }
                    assert!(o.blackhole_ip.is_some(), "IXPs advertise a blackholing IP");
                }
            }
        }
        assert!(rfc >= other, "RFC 7999 must dominate ({rfc} vs {other})");
        assert!(rfc + other >= 3);
    }

    #[test]
    fn level3_decoy_exists() {
        // The first transit blackholer blackholes with ASN:9999 and tags
        // peering routes with ASN:666.
        let t = build_tiny();
        let decoy = t.ases().find(|info| {
            info.blackhole_offering
                .as_ref()
                .is_some_and(|o| o.primary_community().value_part() == 9999)
                && info.tag_communities.iter().any(|c| c.value_part() == 666)
        });
        assert!(decoy.is_some(), "Level3-style decoy must exist");
    }

    #[test]
    fn prefixes_are_globally_disjoint() {
        let t = build_tiny();
        let mut all: Vec<_> = t.ases().flat_map(|i| i.prefixes.iter().copied()).collect();
        for ixp in t.ixps() {
            all.push(ixp.peering_lan);
        }
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert!(!a.contains(b) && !b.contains(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn classifier_is_usable_on_generated_topology() {
        let t = build_tiny();
        let c = Classifier;
        // Every AS classifies without panicking; IXP route servers with
        // records classify as IXP.
        for info in t.ases() {
            let _ = c.classify(&t, info.asn);
        }
        for ixp in t.ixps() {
            assert_eq!(c.network_type(&t, ixp.route_server_asn), NetworkType::Ixp);
        }
    }

    #[test]
    fn massive_scaled_builds_a_power_law_graph() {
        let cfg = TopologyConfig::massive_scaled(11, 2000);
        let t = TopologyBuilder::new(cfg.clone()).build();
        assert_eq!(t.as_count(), cfg.total_ases() + cfg.ixp_count);
        let expect_bh = cfg.bh_transit.documented
            + cfg.bh_transit.undocumented
            + cfg.bh_ixp
            + cfg.bh_content.documented
            + cfg.bh_content.undocumented
            + cfg.bh_edu.documented
            + cfg.bh_edu.undocumented
            + cfg.bh_enterprise.documented
            + cfg.bh_enterprise.undocumented
            + cfg.bh_unknown.documented
            + cfg.bh_unknown.undocumented;
        assert_eq!(t.blackholing_providers().len(), expect_bh);
        // Preferential attachment: hub transits dwarf the median.
        let mut degrees: Vec<usize> = t
            .ases()
            .filter(|i| i.tier == Tier::Transit)
            .map(|i| t.degrees(i.asn).customers)
            .collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().unwrap();
        assert!(
            max >= 40 && max >= 5 * median.max(1),
            "no power-law tail: max {max}, median {median}"
        );
        // Stubs still multihome and reach the core.
        let tier1: Vec<Asn> = t.ases().filter(|i| i.tier == Tier::Tier1).map(|i| i.asn).collect();
        for info in t.ases() {
            if info.network_type == NetworkType::Ixp {
                continue;
            }
            if info.tier == Tier::Stub {
                assert!(!t.providers_of(info.asn).is_empty(), "{} has no provider", info.asn);
            }
            let cone = t.provider_cone(info.asn);
            assert!(
                tier1.iter().any(|asn| cone.contains(asn)),
                "{} cannot reach the core",
                info.asn
            );
        }
        // Route-server ASNs moved out of the regular ASN walk's range.
        for ixp in t.ixps() {
            assert!(ixp.route_server_asn.value() >= 3_000_000);
        }
        // Prefixes stay globally disjoint under the packed allocator.
        let mut all: Vec<_> = t.ases().flat_map(|i| i.prefixes.iter().copied()).collect();
        for ixp in t.ixps() {
            all.push(ixp.peering_lan);
        }
        all.sort_unstable_by_key(|p| (u32::from(p.network()), p.length()));
        for pair in all.windows(2) {
            assert!(
                !pair[0].contains(&pair[1]) && !pair[1].contains(&pair[0]),
                "{} overlaps {}",
                pair[0],
                pair[1]
            );
        }
        // The rank invariant the phased engine relies on, at scale.
        let ranks = t.propagation_ranks();
        for info in t.ases() {
            for &(neighbor, rel) in t.neighbors(info.asn) {
                if rel == Relationship::Provider {
                    assert!(
                        ranks.rank_of(neighbor).unwrap() > ranks.rank_of(info.asn).unwrap(),
                        "provider edge {} -> {} does not increase rank",
                        info.asn,
                        neighbor
                    );
                }
            }
        }
    }

    #[test]
    fn default_scale_builds_and_is_consistent() {
        // One full-size build to catch scaling issues (allocator bounds,
        // member sampling, etc.).
        let t = TopologyBuilder::with_seed(1).build();
        let cfg = TopologyConfig::default();
        assert_eq!(t.as_count(), cfg.total_ases() + cfg.ixp_count);
        assert_eq!(t.blackholing_providers().len(), 307 + 102);
        assert!(t.transit_as_count() > cfg.tier1_count);
        // Documented/undocumented split survives.
        let documented = t
            .ases()
            .filter(|i| {
                i.blackhole_offering
                    .as_ref()
                    .is_some_and(|o| o.documentation != DocumentationChannel::Undocumented)
            })
            .count();
        assert_eq!(documented, 307);
    }
}
