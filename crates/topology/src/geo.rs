//! Geography: country assignment for ASes and IXPs.
//!
//! Figure 6 of the paper maps blackholing providers and users per country,
//! with Russia, the USA and Germany leading both, and Brazil/Ukraine in
//! the users' top-5. The weights below are shaped to reproduce those
//! rankings; the long tail covers the remaining major internet economies.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// Country weight table for *provider-capable* networks (transit/access
/// heavy economies). Fig. 6(a): most blackholing providers are in RU, US,
/// DE.
pub const PROVIDER_COUNTRY_WEIGHTS: &[(&str, u32)] = &[
    ("RU", 20),
    ("US", 18),
    ("DE", 14),
    ("GB", 7),
    ("NL", 6),
    ("FR", 5),
    ("PL", 4),
    ("UA", 4),
    ("BR", 4),
    ("IT", 3),
    ("SE", 3),
    ("CH", 3),
    ("AT", 2),
    ("CZ", 2),
    ("JP", 2),
    ("HK", 2),
    ("SG", 2),
    ("AU", 2),
    ("CA", 2),
    ("ES", 2),
];

/// Country weight table for *edge* networks (hosters, enterprises —
/// potential blackholing users). Fig. 6(b): RU, US, DE lead; BR and UA
/// enter the top-5. §8: top hoster locations RU(46) US(30) DE(21) UA(18)
/// PL(10).
pub const USER_COUNTRY_WEIGHTS: &[(&str, u32)] = &[
    ("RU", 22),
    ("US", 16),
    ("DE", 12),
    ("BR", 9),
    ("UA", 8),
    ("PL", 6),
    ("NL", 4),
    ("GB", 4),
    ("FR", 4),
    ("IT", 3),
    ("TR", 3),
    ("CZ", 2),
    ("RO", 2),
    ("ES", 2),
    ("CA", 2),
    ("JP", 2),
    ("IN", 2),
    ("ID", 2),
    ("ZA", 1),
    ("AR", 1),
];

/// Countries hosting the major IXPs ("IXPs that provide blackholing
/// services are in major cities which are also telecommunication hubs,
/// particularly in Europe, USA, and Asia"; MSK-IX is called out).
pub const IXP_COUNTRY_WEIGHTS: &[(&str, u32)] = &[
    ("DE", 8),
    ("US", 7),
    ("RU", 6),
    ("NL", 5),
    ("GB", 4),
    ("FR", 3),
    ("HK", 3),
    ("SG", 2),
    ("JP", 2),
    ("BR", 2),
    ("PL", 2),
    ("IT", 2),
    ("SE", 1),
    ("CZ", 1),
    ("AT", 1),
];

/// Sample a country code from a weight table.
pub fn sample_country<R: Rng + ?Sized>(rng: &mut R, table: &[(&'static str, u32)]) -> &'static str {
    let dist = WeightedIndex::new(table.iter().map(|(_, w)| *w))
        .expect("weight tables are non-empty with positive weights");
    table[dist.sample(rng)].0
}

/// Convenience: all distinct country codes across the tables (for
/// reporting axes).
pub fn all_countries() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = PROVIDER_COUNTRY_WEIGHTS
        .iter()
        .chain(USER_COUNTRY_WEIGHTS)
        .chain(IXP_COUNTRY_WEIGHTS)
        .map(|(c, _)| *c)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(
                sample_country(&mut a, PROVIDER_COUNTRY_WEIGHTS),
                sample_country(&mut b, PROVIDER_COUNTRY_WEIGHTS)
            );
        }
    }

    #[test]
    fn heavy_countries_dominate_samples() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ru_us_de = 0;
        let n = 2000;
        for _ in 0..n {
            let c = sample_country(&mut rng, PROVIDER_COUNTRY_WEIGHTS);
            if matches!(c, "RU" | "US" | "DE") {
                ru_us_de += 1;
            }
        }
        // RU+US+DE carry 52/107 of the weight; allow slack.
        assert!(ru_us_de > n * 40 / 100, "got {ru_us_de}/{n}");
        assert!(ru_us_de < n * 60 / 100, "got {ru_us_de}/{n}");
    }

    #[test]
    fn user_table_includes_papers_top5() {
        let countries: Vec<_> = USER_COUNTRY_WEIGHTS.iter().map(|(c, _)| *c).collect();
        for c in ["RU", "US", "DE", "BR", "UA"] {
            assert!(countries.contains(&c));
        }
    }

    #[test]
    fn all_countries_is_sorted_unique() {
        let all = all_countries();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(all, sorted);
        assert!(all.len() >= 20);
    }
}
