//! # bh-topology — synthetic AS-level Internet
//!
//! The paper measures a real Internet through BGP collectors; this crate
//! builds the *substrate* that substitutes for it: a seeded, deterministic
//! AS-level topology with
//!
//! * a tier-1 clique, mid-tier transit, and typed stub networks
//!   (content/enterprise/education/unknown — the PeeringDB taxonomy of
//!   Tables 2 and 4),
//! * Gao-Rexford business relationships (customer/provider/peer) plus IXP
//!   route-server sessions,
//! * IXPs with route servers, published peering LANs and `.66` blackholing
//!   IPs (the PeeringDB data the inference consults),
//! * per-country registration following Fig. 6's distributions,
//! * **ground-truth blackhole offerings** shaped like Table 2 — including
//!   ambiguous shared communities, regional variants, the RFC 7999 IXP
//!   majority, one RFC 8092 large-community blackholer, and the
//!   Level3-style `ASN:666`-as-peering-tag decoy,
//! * a PeeringDB→CAIDA two-stage classifier ([`registry::Classifier`]).
//!
//! Ground truth lives here so that the `bh-irr` dictionary miner and the
//! `bh-core` inference engine can be *validated* against it: precision and
//! recall are measurable instead of anecdotal.

pub mod addressing;
pub mod gen;
pub mod geo;
pub mod graph;
pub mod policy;
pub mod registry;
pub mod types;

pub use addressing::AddressAllocator;
pub use gen::{ProviderCounts, TopologyBuilder, TopologyConfig};
pub use graph::{AsnIndex, Degrees, LanIndex, OriginIndex, PropagationRanks, Topology};
pub use policy::{AsPolicy, CommunityScrub, PolicyTable, Roa, RoaTable, RpkiValidity};
pub use registry::{ClassificationSource, Classifier};
pub use types::{
    classic_community, AsInfo, BlackholeAuth, BlackholeOffering, DocumentationChannel, Ixp, IxpId,
    LargeTag, NetworkType, Relationship, TagClass, Tier,
};
