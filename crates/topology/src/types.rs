//! Core topology types: ASes, network types, relationships, blackhole
//! offerings (ground truth).

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::community::{Community, LargeCommunity};
use bh_bgp_types::prefix::Ipv4Prefix;

/// Network type taxonomy used throughout the paper (Tables 2 and 4).
///
/// Matches the paper's convention: PeeringDB's NSP and Cable/DSL/ISP are
/// folded into `TransitAccess` (as CAIDA's classification does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetworkType {
    /// Transit and access providers (NSP + Cable/DSL/ISP).
    TransitAccess,
    /// Internet exchange points (the route-server ASN).
    Ixp,
    /// Content providers, CDNs, hosters.
    Content,
    /// Educational / research / not-for-profit.
    EducationResearchNfp,
    /// Enterprises.
    Enterprise,
    /// No record or undisclosed.
    Unknown,
}

impl NetworkType {
    /// All types in the paper's table order.
    pub const ALL: [NetworkType; 6] = [
        NetworkType::TransitAccess,
        NetworkType::Ixp,
        NetworkType::Content,
        NetworkType::EducationResearchNfp,
        NetworkType::Enterprise,
        NetworkType::Unknown,
    ];

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkType::TransitAccess => "Transit/Access",
            NetworkType::Ixp => "IXP",
            NetworkType::Content => "Content",
            NetworkType::EducationResearchNfp => "Educ./Res./NfP",
            NetworkType::Enterprise => "Enterprise",
            NetworkType::Unknown => "Unknown",
        }
    }
}

/// Position in the transit hierarchy (generator-internal, but useful for
/// tests and probe selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Member of the top clique (settlement-free core).
    Tier1,
    /// Mid-tier transit provider.
    Transit,
    /// Edge network with no customers of its own.
    Stub,
}

/// Business relationship on an AS-AS edge, from the perspective of the
/// first AS (Gao-Rexford model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays us: we are their provider.
    Customer,
    /// We pay the neighbor: they are our provider.
    Provider,
    /// Settlement-free peer (includes bilateral IXP peering).
    Peer,
    /// Session with an IXP route server (multilateral peering).
    RouteServer,
}

impl Relationship {
    /// The same edge from the other side.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::RouteServer => Relationship::RouteServer,
        }
    }
}

/// How a blackhole offering is documented — determines whether the
/// dictionary builder can discover it and through which channel (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocumentationChannel {
    /// Documented in an IRR `aut-num` record (largest source: 172
    /// communities for 209 networks in the paper).
    Irr,
    /// Documented on the operator's web page (130 communities, 93 ASes).
    WebPage,
    /// Learned via private communication (5 networks).
    Private,
    /// Not documented anywhere — discoverable only via the prefix-length
    /// profile inference (111 inferred communities on 102 ASes).
    Undocumented,
}

/// Ground-truth usage class of a non-blackhole tag community (the
/// Krenc et al. taxonomy the multi-class dictionary is validated
/// against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TagClass {
    /// Geographic ingress tagging ("route learned at FRA").
    Location,
    /// Actionable traffic engineering (prepend, local-pref, export
    /// control).
    Action,
    /// Purely informational marking (relationship tags, route provenance).
    Informational,
}

/// A tag community in RFC 8092 large form, with its usage class — the
/// only representable form when the tagging AS has a 32-bit ASN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LargeTag {
    /// The large community.
    pub community: LargeCommunity,
    /// Ground-truth usage class.
    pub class: TagClass,
}

/// The RFC 1997 classic community `asn:value`, when the ASN fits in 16
/// bits. 32-bit ASNs have no classic encoding — truncating with
/// `& 0xFFFF` would alias every pair of providers that agree mod 2^16
/// onto one tag, so callers must fall back to RFC 8092 large
/// communities instead.
pub fn classic_community(asn: Asn, value: u16) -> Option<Community> {
    u16::try_from(asn.value()).ok().map(|high| Community::from_parts(high, value))
}

/// Authentication the provider applies before honoring a blackhole
/// request (§2: origin/customer-cone, RPKI, or IRR registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlackholeAuth {
    /// Accept if the requester originates the prefix or has it in its
    /// customer cone (the common practice).
    OriginOrCone,
    /// Accept only RPKI-valid announcements.
    Rpki,
    /// Accept only prefixes registered in an IRR.
    IrrRegistered,
}

/// Ground truth: one network's blackholing service offering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlackholeOffering {
    /// Trigger communities. First entry is the global community; any
    /// additional entries are regional variants (e.g. blackhole only in
    /// Europe/US/Asia).
    pub communities: Vec<Community>,
    /// RFC 8092 large-community trigger — rare: the paper found exactly
    /// one network blackholing via the new community formats.
    pub large_community: Option<LargeCommunity>,
    /// Maximum accepted prefix length is always 32; this is the *minimum*
    /// accepted length (best practice: 24 or 25 — "prefixes less-specific
    /// than /24 should not be allowed to be blackholed").
    pub min_accepted_length: u8,
    /// How the offering is documented.
    pub documentation: DocumentationChannel,
    /// Authentication mode.
    pub auth: BlackholeAuth,
    /// The blackholing next-hop IP (IXPs advertise one; the common IPv4
    /// convention is a last octet of .66).
    pub blackhole_ip: Option<Ipv4Addr>,
    /// Whether the provider strips the blackhole community before
    /// propagating (suppresses visibility at collectors).
    pub strips_community: bool,
    /// Whether the provider honors NO_EXPORT on blackhole routes
    /// (RFC 7999 compliance). Many networks do not — that non-compliance
    /// is precisely what makes the study's propagation findings possible.
    pub honors_no_export: bool,
}

impl BlackholeOffering {
    /// The primary (global) trigger community.
    pub fn primary_community(&self) -> Community {
        self.communities[0]
    }

    /// Does the offering accept a blackhole request for a prefix of the
    /// given length?
    pub fn accepts_length(&self, length: u8) -> bool {
        length >= self.min_accepted_length && length <= 32
    }

    /// Is this community one of the offering's triggers?
    pub fn is_trigger(&self, community: Community) -> bool {
        self.communities.contains(&community)
    }
}

/// One autonomous system in the synthetic Internet.
#[derive(Debug, Clone, Serialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Ground-truth network type.
    pub network_type: NetworkType,
    /// ISO-3166-alpha-2 country code of RIR registration.
    pub country: &'static str,
    /// Originated IPv4 address space.
    pub prefixes: Vec<Ipv4Prefix>,
    /// Blackholing service offered (ground truth), if any.
    pub blackhole_offering: Option<BlackholeOffering>,
    /// Non-blackhole communities this AS attaches to routes it exports
    /// (relationship tagging, traffic engineering, location tagging).
    /// These feed Fig. 2's blackhole-vs-other prefix-length comparison
    /// and provide decoys for the dictionary miner (e.g. the Level3-style
    /// `ASN:666` peering tag that does *not* mean blackholing).
    pub tag_communities: Vec<Community>,
    /// Ground-truth usage class of each entry in `tag_communities`
    /// (parallel vector; missing entries default to
    /// [`TagClass::Informational`] via [`AsInfo::classed_tags`]).
    pub tag_classes: Vec<TagClass>,
    /// Tag communities of 32-bit-ASN networks, which have no classic
    /// (RFC 1997) encoding and are carried as RFC 8092 large
    /// communities instead.
    pub tag_large_communities: Vec<LargeTag>,
    /// Whether this AS has a PeeringDB record that discloses its type
    /// (when false, classification falls back to the CAIDA-style
    /// inference).
    pub in_peeringdb: bool,
}

impl AsInfo {
    /// Does this AS offer blackholing?
    pub fn offers_blackholing(&self) -> bool {
        self.blackhole_offering.is_some()
    }

    /// Classic tag communities paired with their ground-truth class.
    /// Tags without a recorded class (hand-built fixtures) default to
    /// [`TagClass::Informational`].
    pub fn classed_tags(&self) -> impl Iterator<Item = (Community, TagClass)> + '_ {
        self.tag_communities
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, self.tag_classes.get(i).copied().unwrap_or(TagClass::Informational)))
    }

    /// Does this AS originate the given prefix (exactly or as a covering
    /// aggregate)?
    pub fn originates(&self, prefix: &Ipv4Prefix) -> bool {
        self.prefixes.iter().any(|p| p.contains(prefix))
    }
}

/// Identifier for an IXP (index into [`crate::Topology::ixps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IxpId(pub u32);

/// An Internet exchange point with a route server.
#[derive(Debug, Clone, Serialize)]
pub struct Ixp {
    /// Identifier.
    pub id: IxpId,
    /// Human-readable name.
    pub name: String,
    /// ASN of the route server (what appears on AS paths when the route
    /// server does not strip itself — many insert their ASN).
    pub route_server_asn: Asn,
    /// Whether the route server inserts its ASN into the AS path
    /// (transparent route servers do not, which forces the peer-IP
    /// detection path in the inference).
    pub route_server_in_path: bool,
    /// The peering LAN (PeeringDB publishes these; the inference checks
    /// whether a BGP message's peer-ip falls inside one).
    pub peering_lan: Ipv4Prefix,
    /// Member ASNs.
    pub members: Vec<Asn>,
    /// Country of the IXP's (primary) location.
    pub country: &'static str,
}

impl Ixp {
    /// Is the AS a member?
    pub fn has_member(&self, asn: Asn) -> bool {
        self.members.contains(&asn)
    }

    /// The peering-LAN address assigned to a member (deterministic:
    /// member index + 2, skipping network/gateway).
    pub fn member_lan_ip(&self, asn: Asn) -> Option<Ipv4Addr> {
        let idx = self.members.iter().position(|&m| m == asn)?;
        self.peering_lan.nth_addr(idx as u64 + 2).and_then(|ip| {
            // Stay inside the LAN.
            if self.peering_lan.contains_addr(ip) {
                Some(ip)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offering() -> BlackholeOffering {
        BlackholeOffering {
            communities: vec![Community::from_parts(3356, 9999)],
            large_community: None,
            min_accepted_length: 25,
            documentation: DocumentationChannel::Irr,
            auth: BlackholeAuth::OriginOrCone,
            blackhole_ip: None,
            strips_community: false,
            honors_no_export: true,
        }
    }

    #[test]
    fn relationship_reverse_is_involutive() {
        for r in [
            Relationship::Customer,
            Relationship::Provider,
            Relationship::Peer,
            Relationship::RouteServer,
        ] {
            assert_eq!(r.reverse().reverse(), r);
        }
        assert_eq!(Relationship::Customer.reverse(), Relationship::Provider);
        assert_eq!(Relationship::Peer.reverse(), Relationship::Peer);
    }

    #[test]
    fn offering_length_window() {
        let o = offering();
        assert!(o.accepts_length(32));
        assert!(o.accepts_length(25));
        assert!(!o.accepts_length(24));
        assert!(!o.accepts_length(8));
    }

    #[test]
    fn offering_triggers() {
        let o = offering();
        assert!(o.is_trigger(Community::from_parts(3356, 9999)));
        assert!(!o.is_trigger(Community::from_parts(3356, 666)));
        assert_eq!(o.primary_community(), Community::from_parts(3356, 9999));
    }

    #[test]
    fn as_info_originates() {
        let info = AsInfo {
            asn: Asn::new(64500),
            tier: Tier::Stub,
            network_type: NetworkType::Content,
            country: "DE",
            prefixes: vec!["130.149.0.0/16".parse().unwrap()],
            blackhole_offering: None,
            tag_communities: vec![],
            tag_classes: vec![],
            tag_large_communities: vec![],
            in_peeringdb: true,
        };
        assert!(info.originates(&"130.149.1.1/32".parse().unwrap()));
        assert!(info.originates(&"130.149.0.0/16".parse().unwrap()));
        assert!(!info.originates(&"130.150.0.0/16".parse().unwrap()));
        assert!(!info.offers_blackholing());
    }

    #[test]
    fn ixp_member_lan_ips_are_distinct_and_inside_lan() {
        let ixp = Ixp {
            id: IxpId(0),
            name: "TEST-IX".into(),
            route_server_asn: Asn::new(64700),
            route_server_in_path: true,
            peering_lan: "185.1.0.0/24".parse().unwrap(),
            members: vec![Asn::new(1), Asn::new(2), Asn::new(3)],
            country: "DE",
        };
        let ips: Vec<_> = ixp.members.iter().map(|&m| ixp.member_lan_ip(m).unwrap()).collect();
        assert_eq!(ips.len(), 3);
        for ip in &ips {
            assert!(ixp.peering_lan.contains_addr(*ip));
        }
        let mut dedup = ips.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        assert!(ixp.member_lan_ip(Asn::new(99)).is_none());
    }

    #[test]
    fn network_type_labels_match_paper_rows() {
        assert_eq!(NetworkType::TransitAccess.label(), "Transit/Access");
        assert_eq!(NetworkType::ALL.len(), 6);
    }
}
