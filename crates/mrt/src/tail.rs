//! Tailing MRT reader: incremental decoding of a *growing* archive.
//!
//! [`MrtReader`](crate::read::MrtReader) and
//! [`MrtBytesReader`](crate::read::MrtBytesReader) both assume the
//! archive is complete: a record that extends past the end of the input
//! is a framing tear and ends the stream with an error. A live pipeline
//! tails archives that are still being written, where the same byte
//! pattern — a partial trailing record — means "the writer has not
//! finished this record *yet*". [`TailingReader`] makes that distinction
//! explicit: bytes are appended with [`TailingReader::extend`] as the
//! archive grows, a partial trailing record yields `Ok(None)` ("no more
//! messages *for now*") and is re-framed on the next call once more
//! bytes arrived, and only after [`TailingReader::close`] does a
//! leftover partial record become the truncation error it would be in a
//! finished archive.
//!
//! The reader implements [`MessageStream`], so
//! `bh_routing::MrtElemSource` drives it like any other framing
//! strategy; consumers distinguish "pending" from "end of stream" by
//! whether the reader [`is_closed`](TailingReader::is_closed).

use bytes::Bytes;

use bh_bgp_types::error::CodecError;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::wire::AttrCache;

use crate::read::{decode_body, MessageStream, ReadMode, MAX_RECORD_LEN};
use crate::record::{Bgp4mpMessage, MrtError, MrtRecord, MrtRecordBody};

/// An incremental MRT reader over an archive that is still growing.
///
/// See the [module docs](self) for the pending-vs-torn semantics. The
/// reader buffers only the unconsumed tail of the archive (consumed
/// records are compacted away), so tailing an unbounded feed costs
/// memory proportional to one partial record plus one append chunk.
pub struct TailingReader {
    buf: Vec<u8>,
    pos: usize,
    mode: ReadMode,
    closed: bool,
    failed: bool,
    records_read: u64,
    records_skipped: u64,
    bytes_consumed: u64,
    cache: AttrCache,
}

impl Default for TailingReader {
    fn default() -> Self {
        Self::new()
    }
}

impl TailingReader {
    /// Strict tailing reader (the first malformed *payload* is an error).
    pub fn new() -> Self {
        TailingReader {
            buf: Vec::new(),
            pos: 0,
            mode: ReadMode::Strict,
            closed: false,
            failed: false,
            records_read: 0,
            records_skipped: 0,
            bytes_consumed: 0,
            cache: AttrCache::new(),
        }
    }

    /// Tolerant tailing reader (skips undecodable payloads; framing
    /// stays strict, and a partial tail is still "pending", not a skip).
    pub fn tolerant() -> Self {
        TailingReader { mode: ReadMode::Tolerant, ..Self::new() }
    }

    /// Append newly observed archive bytes. Appending after
    /// [`TailingReader::close`] is a caller bug and panics.
    pub fn extend(&mut self, chunk: &[u8]) {
        assert!(!self.closed, "extend() after close(): the archive was declared complete");
        // Compact the consumed prefix before growing, so the buffer
        // holds only the pending tail plus the new chunk.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Declare the archive complete: no more bytes will arrive. After
    /// this, a leftover partial record is reported as the truncation
    /// error a finished archive would produce.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Has [`TailingReader::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes framed into records so far (complete records only — a
    /// pending partial tail is not consumed).
    pub fn bytes_consumed(&self) -> u64 {
        self.bytes_consumed
    }

    /// Bytes buffered but not yet framed (the partial tail, if any).
    pub fn bytes_pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete record. `Ok(None)` means "no complete
    /// record buffered": end of stream if [`close`](Self::close) was
    /// called and everything framed cleanly, otherwise "pending — call
    /// again after [`extend`](Self::extend)".
    pub fn try_next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        loop {
            if self.failed {
                return Ok(None);
            }
            let avail = self.buf.len() - self.pos;
            if avail == 0 {
                return Ok(None); // fully framed: clean EOF or pending
            }
            if avail < 12 {
                if self.closed {
                    self.failed = true;
                    return Err(CodecError::Truncated {
                        what: "mrt header",
                        needed: 12,
                        available: avail,
                    }
                    .into());
                }
                return Ok(None); // partial header: retry after growth
            }
            let header = &self.buf[self.pos..self.pos + 12];
            let ts = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
            let ty = u16::from_be_bytes(header[4..6].try_into().expect("2 bytes"));
            let subtype = u16::from_be_bytes(header[6..8].try_into().expect("2 bytes"));
            let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                self.failed = true;
                return Err(MrtError::OversizedRecord(len));
            }
            let need = 12 + len as usize;
            if avail < need {
                if self.closed {
                    self.failed = true;
                    return Err(CodecError::Truncated {
                        what: "mrt body",
                        needed: len as usize,
                        available: avail - 12,
                    }
                    .into());
                }
                // The partial trailing record stays buffered; the next
                // poll after the archive grew re-frames it from the
                // same offset instead of skipping it as corrupt.
                return Ok(None);
            }
            let timestamp = SimTime::from_unix(ts as u64);
            let body = Bytes::from(&self.buf[self.pos + 12..self.pos + need]);
            self.pos += need;
            self.bytes_consumed += need as u64;
            match decode_body(ty, subtype, body, Some(&mut self.cache)) {
                Ok(body) => {
                    self.records_read += 1;
                    return Ok(Some(MrtRecord { timestamp, body }));
                }
                Err(e) => match self.mode {
                    ReadMode::Strict => {
                        self.failed = true;
                        return Err(e);
                    }
                    ReadMode::Tolerant => {
                        self.records_skipped += 1;
                        continue;
                    }
                },
            }
        }
    }
}

impl MessageStream for TailingReader {
    fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError> {
        while let Some(record) = self.try_next_record()? {
            if let MrtRecordBody::Message(msg) = record.body {
                return Ok(Some((record.timestamp, msg)));
            }
        }
        Ok(None)
    }

    fn records_read(&self) -> u64 {
        self.records_read
    }

    fn records_skipped(&self) -> u64 {
        self.records_skipped
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::attrs::PathAttributes;
    use bh_bgp_types::update::BgpUpdate;

    use super::*;
    use crate::write::MrtWriter;

    fn update_record(t: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let mut update = BgpUpdate::new(PathAttributes::basic(
            "6939 64500".parse().unwrap(),
            "10.0.0.9".parse().unwrap(),
        ));
        update.announce_v4("130.149.1.1/32".parse().unwrap());
        w.write_update(
            SimTime::from_unix(t),
            Asn::new(6939),
            "10.0.0.1".parse().unwrap(),
            Asn::new(65000),
            "10.0.0.2".parse().unwrap(),
            &update,
        )
        .unwrap();
        buf
    }

    #[test]
    fn empty_reader_is_pending_until_closed() {
        let mut r = TailingReader::new();
        assert!(r.try_next_record().unwrap().is_none());
        assert!(!r.is_closed());
        r.close();
        assert!(r.try_next_record().unwrap().is_none(), "clean EOF after close");
    }

    #[test]
    fn partial_tail_is_pending_then_decodes_after_growth() {
        let rec = update_record(5);
        let mut r = TailingReader::new();
        // Grow the archive in three fragments that tear the record at a
        // header boundary and mid-body.
        r.extend(&rec[..7]);
        assert!(r.try_next_record().unwrap().is_none(), "partial header pends");
        r.extend(&rec[7..rec.len() - 3]);
        assert!(r.try_next_record().unwrap().is_none(), "partial body pends");
        assert_eq!(r.records_read(), 0);
        r.extend(&rec[rec.len() - 3..]);
        let got = r.try_next_record().unwrap().expect("record completes");
        assert_eq!(got.timestamp, SimTime::from_unix(5));
        assert_eq!(r.records_read(), 1);
        assert_eq!(r.bytes_consumed(), rec.len() as u64);
        assert_eq!(r.bytes_pending(), 0);
    }

    #[test]
    fn close_turns_partial_tail_into_truncation_error() {
        let rec = update_record(5);
        let mut r = TailingReader::new();
        r.extend(&rec[..rec.len() - 3]);
        assert!(r.try_next_record().unwrap().is_none());
        r.close();
        assert!(matches!(r.try_next_record(), Err(MrtError::Codec(_))));
        // The failure latches: the stream is dead, not retried.
        assert!(r.try_next_record().unwrap().is_none());
    }

    #[test]
    fn interleaved_appends_and_reads_stream_every_record() {
        let mut r = TailingReader::new();
        let mut seen = 0u64;
        for t in 0..20u64 {
            let rec = update_record(t);
            let cut = rec.len() / 2;
            r.extend(&rec[..cut]);
            while let Some((time, _)) = r.next_message().unwrap() {
                assert_eq!(time, SimTime::from_unix(seen));
                seen += 1;
            }
            r.extend(&rec[cut..]);
        }
        r.close();
        while r.next_message().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 20);
        assert_eq!(r.records_read(), 20);
    }

    #[test]
    fn tolerant_tail_skips_corrupt_payload_but_pends_on_partial() {
        let mut noisy = Vec::new();
        noisy.extend_from_slice(&1u32.to_be_bytes());
        noisy.extend_from_slice(&crate::record::mrt_type::BGP4MP.to_be_bytes());
        noisy.extend_from_slice(&crate::record::bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
        noisy.extend_from_slice(&4u32.to_be_bytes());
        noisy.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let rec = update_record(9);

        let mut r = TailingReader::tolerant();
        r.extend(&noisy);
        r.extend(&rec[..5]);
        assert!(r.next_message().unwrap().is_none(), "corrupt skipped, tail pends");
        assert_eq!(r.records_skipped(), 1);
        r.extend(&rec[5..]);
        assert!(r.next_message().unwrap().is_some());
        assert_eq!(r.records_read(), 1);
    }

    #[test]
    fn oversized_record_fails_even_while_growing() {
        let mut r = TailingReader::new();
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&0u32.to_be_bytes());
        hdr.extend_from_slice(&crate::record::mrt_type::BGP4MP.to_be_bytes());
        hdr.extend_from_slice(&crate::record::bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
        hdr.extend_from_slice(&(MAX_RECORD_LEN + 1).to_be_bytes());
        r.extend(&hdr);
        assert!(matches!(r.try_next_record(), Err(MrtError::OversizedRecord(_))));
    }
}
