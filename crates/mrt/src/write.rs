//! MRT writer: serializes simulated collector output into archive bytes.

use std::io::Write;
use std::net::IpAddr;

use bytes::{BufMut, BytesMut};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::update::BgpUpdate;
use bh_bgp_types::wire;

use crate::record::{
    bgp4mp_subtype, mrt_type, td2_subtype, BgpState, MrtError, PeerIndexTable, RibEntry,
};

/// Streaming MRT writer over any [`Write`] sink.
///
/// Emits `BGP4MP/MESSAGE_AS4`, `BGP4MP/STATE_CHANGE_AS4`, and
/// `TABLE_DUMP_V2` records with correct length framing, so the output is a
/// structurally valid MRT archive.
pub struct MrtWriter<W: Write> {
    sink: W,
    records_written: u64,
    bytes_written: u64,
}

impl<W: Write> MrtWriter<W> {
    /// Wrap a sink.
    pub fn new(sink: W) -> Self {
        MrtWriter { sink, records_written: 0, bytes_written: 0 }
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Number of bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Consume the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }

    fn write_record(
        &mut self,
        timestamp: SimTime,
        mrt_ty: u16,
        subtype: u16,
        body: &[u8],
    ) -> Result<(), MrtError> {
        let mut header = BytesMut::with_capacity(12);
        header.put_u32(timestamp.unix() as u32);
        header.put_u16(mrt_ty);
        header.put_u16(subtype);
        header.put_u32(body.len() as u32);
        self.sink.write_all(&header)?;
        self.sink.write_all(body)?;
        self.records_written += 1;
        self.bytes_written += (header.len() + body.len()) as u64;
        Ok(())
    }

    fn put_addr_pair(buf: &mut BytesMut, peer_ip: IpAddr, local_ip: IpAddr) {
        // AFI + addresses. Mixed-family pairs are not representable in
        // BGP4MP; treat the peer address family as authoritative.
        match (peer_ip, local_ip) {
            (IpAddr::V4(p), IpAddr::V4(l)) => {
                buf.put_u16(1); // AFI IPv4
                buf.put_slice(&p.octets());
                buf.put_slice(&l.octets());
            }
            (IpAddr::V6(p), IpAddr::V6(l)) => {
                buf.put_u16(2); // AFI IPv6
                buf.put_slice(&p.octets());
                buf.put_slice(&l.octets());
            }
            (IpAddr::V4(p), IpAddr::V6(_)) => {
                buf.put_u16(1);
                buf.put_slice(&p.octets());
                buf.put_slice(&[0u8; 4]);
            }
            (IpAddr::V6(p), IpAddr::V4(_)) => {
                buf.put_u16(2);
                buf.put_slice(&p.octets());
                buf.put_slice(&[0u8; 16]);
            }
        }
    }

    /// Write one UPDATE as a `BGP4MP/MESSAGE_AS4` record.
    pub fn write_update(
        &mut self,
        timestamp: SimTime,
        peer_asn: Asn,
        peer_ip: IpAddr,
        local_asn: Asn,
        local_ip: IpAddr,
        update: &BgpUpdate,
    ) -> Result<(), MrtError> {
        let mut body = BytesMut::new();
        body.put_u32(peer_asn.value());
        body.put_u32(local_asn.value());
        body.put_u16(0); // interface index
        Self::put_addr_pair(&mut body, peer_ip, local_ip);
        let msg = wire::encode_update_message(update);
        body.put_slice(&msg);
        self.write_record(timestamp, mrt_type::BGP4MP, bgp4mp_subtype::MESSAGE_AS4, &body)
    }

    /// Write a `BGP4MP/STATE_CHANGE_AS4` record.
    #[allow(clippy::too_many_arguments)]
    pub fn write_state_change(
        &mut self,
        timestamp: SimTime,
        peer_asn: Asn,
        peer_ip: IpAddr,
        local_asn: Asn,
        local_ip: IpAddr,
        old_state: BgpState,
        new_state: BgpState,
    ) -> Result<(), MrtError> {
        let mut body = BytesMut::new();
        body.put_u32(peer_asn.value());
        body.put_u32(local_asn.value());
        body.put_u16(0);
        Self::put_addr_pair(&mut body, peer_ip, local_ip);
        body.put_u16(old_state.code());
        body.put_u16(new_state.code());
        self.write_record(timestamp, mrt_type::BGP4MP, bgp4mp_subtype::STATE_CHANGE_AS4, &body)
    }

    /// Write a `TABLE_DUMP_V2/PEER_INDEX_TABLE` record. Must precede the
    /// RIB entries that reference it.
    pub fn write_peer_index_table(
        &mut self,
        timestamp: SimTime,
        table: &PeerIndexTable,
    ) -> Result<(), MrtError> {
        let mut body = BytesMut::new();
        body.put_slice(&table.collector_id);
        let name = table.view_name.as_bytes();
        body.put_u16(name.len() as u16);
        body.put_slice(name);
        body.put_u16(table.peers.len() as u16);
        for peer in &table.peers {
            // Peer type: bit 0 = IPv6 address, bit 1 = 4-byte ASN (always).
            match peer.ip {
                IpAddr::V4(v4) => {
                    body.put_u8(0b10);
                    body.put_slice(&peer.bgp_id);
                    body.put_slice(&v4.octets());
                }
                IpAddr::V6(v6) => {
                    body.put_u8(0b11);
                    body.put_slice(&peer.bgp_id);
                    body.put_slice(&v6.octets());
                }
            }
            body.put_u32(peer.asn.value());
        }
        self.write_record(timestamp, mrt_type::TABLE_DUMP_V2, td2_subtype::PEER_INDEX_TABLE, &body)
    }

    /// Write one `TABLE_DUMP_V2/RIB_IPV4_UNICAST` record.
    pub fn write_rib_entry(&mut self, timestamp: SimTime, rib: &RibEntry) -> Result<(), MrtError> {
        let mut body = BytesMut::new();
        body.put_u32(rib.sequence);
        wire::encode_nlri(&mut body, &rib.prefix);
        body.put_u16(rib.entries.len() as u16);
        for entry in &rib.entries {
            body.put_u16(entry.peer_index);
            body.put_u32(entry.originated.unix() as u32);
            let attrs = wire::encode_attributes(&entry.attrs);
            body.put_u16(attrs.len() as u16);
            body.put_slice(&attrs);
        }
        self.write_record(timestamp, mrt_type::TABLE_DUMP_V2, td2_subtype::RIB_IPV4_UNICAST, &body)
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::attrs::PathAttributes;

    use super::*;
    use crate::record::PeerEntry;

    #[test]
    fn writer_counts_records_and_bytes() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let update = BgpUpdate::withdraw("10.0.0.0/8".parse().unwrap());
        w.write_update(
            SimTime::from_unix(1),
            Asn::new(1),
            "10.0.0.1".parse().unwrap(),
            Asn::new(2),
            "10.0.0.2".parse().unwrap(),
            &update,
        )
        .unwrap();
        assert_eq!(w.records_written(), 1);
        let bytes = w.bytes_written();
        assert!(bytes > 12);
        assert_eq!(buf.len() as u64, bytes);
    }

    #[test]
    fn header_framing_is_correct() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let table = PeerIndexTable::new(
            [9, 9, 9, 9],
            "x",
            vec![PeerEntry::new(Asn::new(1), "10.0.0.1".parse().unwrap())],
        );
        w.write_peer_index_table(SimTime::from_unix(42), &table).unwrap();
        // timestamp
        assert_eq!(u32::from_be_bytes(buf[0..4].try_into().unwrap()), 42);
        // type / subtype
        assert_eq!(u16::from_be_bytes(buf[4..6].try_into().unwrap()), mrt_type::TABLE_DUMP_V2);
        assert_eq!(
            u16::from_be_bytes(buf[6..8].try_into().unwrap()),
            td2_subtype::PEER_INDEX_TABLE
        );
        // length matches remaining bytes
        let len = u32::from_be_bytes(buf[8..12].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 12);
    }

    #[test]
    fn ipv6_peer_addressing_is_encoded() {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let update = BgpUpdate::new(PathAttributes::default());
        w.write_update(
            SimTime::from_unix(1),
            Asn::new(1),
            "2001:db8::1".parse().unwrap(),
            Asn::new(2),
            "2001:db8::2".parse().unwrap(),
            &update,
        )
        .unwrap();
        // AFI field (after 4+4+2 bytes of ASNs + ifindex, 12-byte header).
        let afi = u16::from_be_bytes(buf[12 + 10..12 + 12].try_into().unwrap());
        assert_eq!(afi, 2);
    }
}
