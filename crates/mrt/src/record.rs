//! MRT record model (RFC 6396).

use std::fmt;
use std::io;
use std::net::{IpAddr, Ipv4Addr};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::attrs::PathAttributes;
use bh_bgp_types::error::CodecError;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::update::BgpUpdate;

/// MRT record types used here.
pub mod mrt_type {
    /// TABLE_DUMP_V2.
    pub const TABLE_DUMP_V2: u16 = 13;
    /// BGP4MP.
    pub const BGP4MP: u16 = 16;
    /// BGP4MP_ET (extended timestamp).
    pub const BGP4MP_ET: u16 = 17;
}

/// BGP4MP subtypes.
pub mod bgp4mp_subtype {
    /// STATE_CHANGE (2-byte AS).
    pub const STATE_CHANGE: u16 = 0;
    /// MESSAGE (2-byte AS).
    pub const MESSAGE: u16 = 1;
    /// MESSAGE_AS4.
    pub const MESSAGE_AS4: u16 = 4;
    /// STATE_CHANGE_AS4.
    pub const STATE_CHANGE_AS4: u16 = 5;
}

/// TABLE_DUMP_V2 subtypes.
pub mod td2_subtype {
    /// PEER_INDEX_TABLE.
    pub const PEER_INDEX_TABLE: u16 = 1;
    /// RIB_IPV4_UNICAST.
    pub const RIB_IPV4_UNICAST: u16 = 2;
}

/// Errors from reading/writing MRT archives.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Record or payload was malformed.
    Codec(CodecError),
    /// A record length field exceeds sanity bounds.
    OversizedRecord(u32),
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "mrt i/o error: {e}"),
            MrtError::Codec(e) => write!(f, "mrt codec error: {e}"),
            MrtError::OversizedRecord(len) => write!(f, "mrt record length {len} exceeds bound"),
        }
    }
}

impl std::error::Error for MrtError {}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

impl From<CodecError> for MrtError {
    fn from(e: CodecError) -> Self {
        MrtError::Codec(e)
    }
}

/// BGP FSM states carried by STATE_CHANGE records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BgpState {
    /// Idle.
    Idle,
    /// Connect.
    Connect,
    /// Active.
    Active,
    /// OpenSent.
    OpenSent,
    /// OpenConfirm.
    OpenConfirm,
    /// Established.
    Established,
}

impl BgpState {
    /// Wire code (RFC 6396 §4.4.1, 1-based).
    pub fn code(self) -> u16 {
        match self {
            BgpState::Idle => 1,
            BgpState::Connect => 2,
            BgpState::Active => 3,
            BgpState::OpenSent => 4,
            BgpState::OpenConfirm => 5,
            BgpState::Established => 6,
        }
    }

    /// Decode from the wire code.
    pub fn from_code(code: u16) -> Option<BgpState> {
        Some(match code {
            1 => BgpState::Idle,
            2 => BgpState::Connect,
            3 => BgpState::Active,
            4 => BgpState::OpenSent,
            5 => BgpState::OpenConfirm,
            6 => BgpState::Established,
            _ => return None,
        })
    }
}

/// A BGP4MP MESSAGE(_AS4) record: one BGP message as seen on a collector
/// session, with addressing metadata.
///
/// `peer_ip`/`peer_asn` identify the BGP peer that sent the message to the
/// collector — the paper's "peer-ip attribute" used to detect IXP
/// blackholing when the peer IP falls inside an IXP peering LAN (§4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpMessage {
    /// ASN of the sending peer.
    pub peer_asn: Asn,
    /// ASN of the collector side.
    pub local_asn: Asn,
    /// IP of the sending peer.
    pub peer_ip: IpAddr,
    /// IP of the collector side.
    pub local_ip: IpAddr,
    /// The decoded UPDATE, or `None` when the record wrapped a non-UPDATE
    /// message (e.g. a KEEPALIVE captured into the archive).
    pub update: Option<BgpUpdate>,
}

/// A BGP4MP STATE_CHANGE(_AS4) record: collector session FSM transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bgp4mpStateChange {
    /// ASN of the peer.
    pub peer_asn: Asn,
    /// ASN of the collector side.
    pub local_asn: Asn,
    /// IP of the peer.
    pub peer_ip: IpAddr,
    /// IP of the collector side.
    pub local_ip: IpAddr,
    /// State before the transition.
    pub old_state: BgpState,
    /// State after the transition.
    pub new_state: BgpState,
}

/// One peer of a TABLE_DUMP_V2 PEER_INDEX_TABLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerEntry {
    /// Peer BGP identifier (router ID).
    pub bgp_id: [u8; 4],
    /// Peer IP address.
    pub ip: IpAddr,
    /// Peer ASN.
    pub asn: Asn,
}

impl PeerEntry {
    /// A peer entry with a router ID derived from its IPv4 address.
    pub fn new(asn: Asn, ip: IpAddr) -> Self {
        let bgp_id = match ip {
            IpAddr::V4(v4) => v4.octets(),
            IpAddr::V6(v6) => {
                let o = v6.octets();
                [o[12], o[13], o[14], o[15]]
            }
        };
        PeerEntry { bgp_id, ip, asn }
    }
}

/// TABLE_DUMP_V2 PEER_INDEX_TABLE: the peer directory that RIB entries
/// reference by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerIndexTable {
    /// Collector BGP identifier.
    pub collector_id: [u8; 4],
    /// Optional view name (e.g. the collector name).
    pub view_name: String,
    /// Peer directory.
    pub peers: Vec<PeerEntry>,
}

impl PeerIndexTable {
    /// Build a table.
    pub fn new(collector_id: [u8; 4], view_name: impl Into<String>, peers: Vec<PeerEntry>) -> Self {
        PeerIndexTable { collector_id, view_name: view_name.into(), peers }
    }

    /// Look up a peer by index.
    pub fn peer(&self, index: u16) -> Option<&PeerEntry> {
        self.peers.get(index as usize)
    }
}

/// One RIB_IPV4_UNICAST entry: the per-peer best paths for one prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry {
    /// Sequence number within the dump.
    pub sequence: u32,
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// One entry per peer that had a path at dump time.
    pub entries: Vec<RibPeerEntry>,
}

/// One peer's path in a [`RibEntry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibPeerEntry {
    /// Index into the PEER_INDEX_TABLE.
    pub peer_index: u16,
    /// When the route was originated/learned.
    pub originated: SimTime,
    /// The path attributes.
    pub attrs: PathAttributes,
}

/// The decoded body of an MRT record.
///
/// The `Message` variant dominates the enum's size, but records are
/// transient parse outputs on the hot decode path — boxing it would cost
/// an allocation per record for no retained-memory benefit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrtRecordBody {
    /// BGP4MP MESSAGE / MESSAGE_AS4.
    Message(Bgp4mpMessage),
    /// BGP4MP STATE_CHANGE / STATE_CHANGE_AS4.
    StateChange(Bgp4mpStateChange),
    /// TABLE_DUMP_V2 PEER_INDEX_TABLE.
    PeerIndexTable(PeerIndexTable),
    /// TABLE_DUMP_V2 RIB_IPV4_UNICAST.
    RibIpv4(RibEntry),
    /// Any record type/subtype this crate does not interpret; payload kept
    /// so tolerant pipelines can account for skipped bytes.
    Unknown {
        /// MRT type field.
        mrt_type: u16,
        /// MRT subtype field.
        subtype: u16,
        /// Raw payload length.
        length: usize,
    },
}

/// A full MRT record: timestamped body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtRecord {
    /// Record timestamp (seconds; `_ET` microseconds are read and folded
    /// away — second granularity is what the study's analyses use).
    pub timestamp: SimTime,
    /// Decoded body.
    pub body: MrtRecordBody,
}

/// Default IPv4 address used for collector-side fields when callers don't
/// care (documentation range).
pub fn default_local_ip() -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgp_state_codes_round_trip() {
        for s in [
            BgpState::Idle,
            BgpState::Connect,
            BgpState::Active,
            BgpState::OpenSent,
            BgpState::OpenConfirm,
            BgpState::Established,
        ] {
            assert_eq!(BgpState::from_code(s.code()), Some(s));
        }
        assert_eq!(BgpState::from_code(0), None);
        assert_eq!(BgpState::from_code(7), None);
    }

    #[test]
    fn peer_entry_derives_router_id() {
        let p = PeerEntry::new(Asn::new(6939), "198.32.176.20".parse().unwrap());
        assert_eq!(p.bgp_id, [198, 32, 176, 20]);
        let p6 = PeerEntry::new(Asn::new(6939), "2001:db8::1".parse().unwrap());
        assert_eq!(p6.bgp_id, [0, 0, 0, 1]);
    }

    #[test]
    fn peer_index_lookup() {
        let table = PeerIndexTable::new(
            [1, 2, 3, 4],
            "v",
            vec![PeerEntry::new(Asn::new(1), "10.0.0.1".parse().unwrap())],
        );
        assert!(table.peer(0).is_some());
        assert!(table.peer(1).is_none());
    }

    #[test]
    fn error_display() {
        let e = MrtError::OversizedRecord(1 << 30);
        assert!(e.to_string().contains("exceeds"));
        let e: MrtError = CodecError::BadLength { what: "x", value: 1 }.into();
        assert!(e.to_string().contains("codec"));
    }
}
