//! # bh-mrt — MRT (RFC 6396) archive reader/writer
//!
//! The paper's pipeline ingests BGP archives in MRT format (RouteViews,
//! RIPE RIS and PCH all publish MRT; BGPStream parses it). The allowed
//! dependency set has no MRT parser, so this crate implements the format
//! from scratch:
//!
//! * **BGP4MP / BGP4MP_ET** `MESSAGE_AS4` and `STATE_CHANGE_AS4` records —
//!   the "updates" files. Message payloads are genuine BGP wire bytes
//!   encoded/decoded by [`bh_bgp_types::wire`].
//! * **TABLE_DUMP_V2** `PEER_INDEX_TABLE` + `RIB_IPV4_UNICAST` records —
//!   the "rib" snapshot files used to initialize inference ("Initialization
//!   Based on BGP Table Dump", §4.2).
//!
//! Scope notes (explicit, smoltcp-style): IPv4 AFI end-to-end (the study is
//! 96.6 % IPv4 and evaluates IPv4 only); `MESSAGE` (2-byte-AS) records are
//! *read* but not written; unknown record types are surfaced as
//! [`MrtRecordBody::Unknown`] so tolerant consumers can skip them, matching
//! how real pipelines must handle archive noise.
//!
//! The reader is incremental and framing-safe: records are length-prefixed,
//! reads never over-consume, and torn/corrupt records produce typed errors
//! that callers may either propagate or skip ([`ReadMode::Tolerant`]).

pub mod read;
pub mod record;
pub mod tail;
pub mod write;

pub use bh_bgp_types::wire::{shared_attr_cache, AttrCache, SharedAttrCache};
pub use read::{MessageStream, MrtBytesReader, MrtReader, ReadMode};
pub use record::{
    Bgp4mpMessage, Bgp4mpStateChange, BgpState, MrtError, MrtRecord, MrtRecordBody, PeerEntry,
    PeerIndexTable, RibEntry, RibPeerEntry,
};
pub use tail::TailingReader;
pub use write::MrtWriter;

#[cfg(test)]
mod round_trip_tests {
    use std::net::IpAddr;

    use bh_bgp_types::asn::Asn;
    use bh_bgp_types::attrs::PathAttributes;
    use bh_bgp_types::community::{Community, CommunitySet};
    use bh_bgp_types::time::SimTime;
    use bh_bgp_types::update::BgpUpdate;

    use super::*;

    fn sample_update() -> BgpUpdate {
        let attrs = PathAttributes::basic(
            "6939 3356 64500".parse().unwrap(),
            "203.0.113.66".parse::<IpAddr>().unwrap(),
        )
        .with_communities(CommunitySet::from_classic(vec![
            Community::from_parts(3356, 9999),
            Community::NO_EXPORT,
        ]));
        let mut update = BgpUpdate::new(attrs);
        update.announce_v4("130.149.1.1/32".parse().unwrap());
        update
    }

    #[test]
    fn full_archive_round_trip() {
        let mut buf = Vec::new();
        {
            let mut writer = MrtWriter::new(&mut buf);
            let peers = vec![
                PeerEntry::new(Asn::new(6939), "198.32.176.20".parse().unwrap()),
                PeerEntry::new(Asn::new(3257), "198.32.176.21".parse().unwrap()),
            ];
            let table = PeerIndexTable::new([10, 0, 0, 255], "test-view", peers);
            writer.write_peer_index_table(SimTime::from_unix(1000), &table).unwrap();

            let rib = RibEntry {
                sequence: 0,
                prefix: "130.149.0.0/16".parse().unwrap(),
                entries: vec![RibPeerEntry {
                    peer_index: 0,
                    originated: SimTime::from_unix(900),
                    attrs: sample_update().attrs.clone(),
                }],
            };
            writer.write_rib_entry(SimTime::from_unix(1000), &rib).unwrap();

            writer
                .write_update(
                    SimTime::from_unix(1100),
                    Asn::new(6939),
                    "198.32.176.20".parse().unwrap(),
                    Asn::new(65_000),
                    "198.32.176.1".parse().unwrap(),
                    &sample_update(),
                )
                .unwrap();

            writer
                .write_state_change(
                    SimTime::from_unix(1200),
                    Asn::new(6939),
                    "198.32.176.20".parse().unwrap(),
                    Asn::new(65_000),
                    "198.32.176.1".parse().unwrap(),
                    BgpState::Established,
                    BgpState::Idle,
                )
                .unwrap();
        }

        let records: Vec<MrtRecord> = MrtReader::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 4);
        assert!(matches!(records[0].body, MrtRecordBody::PeerIndexTable(_)));
        match &records[1].body {
            MrtRecordBody::RibIpv4(rib) => {
                assert_eq!(rib.prefix, "130.149.0.0/16".parse().unwrap());
                assert_eq!(rib.entries.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &records[2].body {
            MrtRecordBody::Message(m) => {
                assert_eq!(m.peer_asn, Asn::new(6939));
                assert_eq!(m.update.as_ref().unwrap(), &sample_update());
            }
            other => panic!("unexpected: {other:?}"),
        }
        match &records[3].body {
            MrtRecordBody::StateChange(sc) => {
                assert_eq!(sc.old_state, BgpState::Established);
                assert_eq!(sc.new_state, BgpState::Idle);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(records[2].timestamp, SimTime::from_unix(1100));
    }
}
