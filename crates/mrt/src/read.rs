//! MRT reader: incremental, framing-safe parsing of archive bytes.

use std::io::Read;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, Bytes};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::error::CodecError;
use bh_bgp_types::time::SimTime;
use bh_bgp_types::wire::{self, AttrCache, SharedAttrCache};

use crate::record::{
    bgp4mp_subtype, mrt_type, td2_subtype, Bgp4mpMessage, Bgp4mpStateChange, BgpState, MrtError,
    MrtRecord, MrtRecordBody, PeerEntry, PeerIndexTable, RibEntry, RibPeerEntry,
};

/// Upper bound on a single MRT record body; anything larger is treated as
/// corruption rather than allocating unbounded memory (defensive parsing).
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// How the reader reacts to malformed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Propagate the first error (default).
    #[default]
    Strict,
    /// Skip records whose *payload* fails to decode, but still propagate
    /// framing-level failures (truncated header/body). This mirrors how
    /// production pipelines survive archive noise without silently
    /// misaligning the record stream.
    Tolerant,
}

/// A source of BGP4MP *messages* — the record type that carries routing
/// updates — decoded from an MRT archive.
///
/// Implemented by [`MrtReader`] (incremental reads from any [`Read`]
/// source) and [`MrtBytesReader`] (zero-copy slicing of an in-memory
/// archive buffer). Consumers like `bh_routing::MrtElemSource` are generic
/// over this trait, so the same element stream runs over either framing
/// strategy.
pub trait MessageStream {
    /// Next BGP4MP message, or `Ok(None)` at EOF. Non-message records
    /// (state changes, RIB dumps, unknown types) are skipped without
    /// buffering.
    fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError>;

    /// Records successfully decoded so far.
    fn records_read(&self) -> u64;

    /// Records skipped (tolerant mode only).
    fn records_skipped(&self) -> u64;
}

/// Streaming MRT reader over any [`Read`] source; iterates
/// [`MrtRecord`]s.
pub struct MrtReader<R: Read> {
    source: R,
    mode: ReadMode,
    records_read: u64,
    records_skipped: u64,
    finished: bool,
    cache: AttrCache,
}

impl<R: Read> MrtReader<R> {
    /// Strict reader.
    pub fn new(source: R) -> Self {
        MrtReader {
            source,
            mode: ReadMode::Strict,
            records_read: 0,
            records_skipped: 0,
            finished: false,
            cache: AttrCache::new(),
        }
    }

    /// Tolerant reader (skips undecodable payloads).
    pub fn tolerant(source: R) -> Self {
        MrtReader { mode: ReadMode::Tolerant, ..Self::new(source) }
    }

    /// Records successfully decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Records skipped (tolerant mode only).
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// The reader's error-handling mode.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// The attribute-block memo table (hit/miss counters for diagnostics).
    pub fn attr_cache(&self) -> &AttrCache {
        &self.cache
    }

    /// Read the 12-byte common header; `Ok(None)` at clean EOF.
    fn read_header(&mut self) -> Result<Option<(SimTime, u16, u16, u32)>, MrtError> {
        let mut header = [0u8; 12];
        let mut filled = 0;
        while filled < header.len() {
            let n = self.source.read(&mut header[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None); // clean EOF between records
                }
                return Err(CodecError::Truncated {
                    what: "mrt header",
                    needed: header.len(),
                    available: filled,
                }
                .into());
            }
            filled += n;
        }
        let ts = u32::from_be_bytes(header[0..4].try_into().unwrap());
        let ty = u16::from_be_bytes(header[4..6].try_into().unwrap());
        let subtype = u16::from_be_bytes(header[6..8].try_into().unwrap());
        let len = u32::from_be_bytes(header[8..12].try_into().unwrap());
        Ok(Some((SimTime::from_unix(ts as u64), ty, subtype, len)))
    }

    fn read_body(&mut self, len: u32) -> Result<Bytes, MrtError> {
        if len > MAX_RECORD_LEN {
            return Err(MrtError::OversizedRecord(len));
        }
        let mut body = vec![0u8; len as usize];
        let mut filled = 0;
        while filled < body.len() {
            let n = self.source.read(&mut body[filled..])?;
            if n == 0 {
                return Err(CodecError::Truncated {
                    what: "mrt body",
                    needed: body.len(),
                    available: filled,
                }
                .into());
            }
            filled += n;
        }
        Ok(Bytes::from(body))
    }

    /// Decode records until the next BGP4MP *message* (the record type
    /// that carries routing updates), or `Ok(None)` at EOF.
    ///
    /// This is the streaming entry point for updates-file consumers:
    /// state changes, RIB records, and unknown record types are skipped
    /// without buffering, so archives of any size are read with constant
    /// memory.
    pub fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError> {
        while let Some(record) = self.next_record()? {
            if let MrtRecordBody::Message(msg) = record.body {
                return Ok(Some((record.timestamp, msg)));
            }
        }
        Ok(None)
    }

    /// Decode the next record, or `Ok(None)` at EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            let Some((timestamp, ty, subtype, len)) = self.read_header()? else {
                self.finished = true;
                return Ok(None);
            };
            let body = self.read_body(len)?;
            match decode_body(ty, subtype, body, Some(&mut self.cache)) {
                Ok(body) => {
                    self.records_read += 1;
                    return Ok(Some(MrtRecord { timestamp, body }));
                }
                Err(e) => match self.mode {
                    ReadMode::Strict => return Err(e),
                    ReadMode::Tolerant => {
                        self.records_skipped += 1;
                        continue;
                    }
                },
            }
        }
    }
}

impl<R: Read> Iterator for MrtReader<R> {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                // After a framing error the stream offset is unreliable;
                // stop rather than emit garbage.
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> MessageStream for MrtReader<R> {
    fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError> {
        MrtReader::next_message(self)
    }

    fn records_read(&self) -> u64 {
        MrtReader::records_read(self)
    }

    fn records_skipped(&self) -> u64 {
        MrtReader::records_skipped(self)
    }
}

/// Zero-copy MRT reader over an in-memory archive buffer.
///
/// Where [`MrtReader`] copies every record body out of its [`Read`] source
/// into a fresh allocation, this reader holds the whole archive as one
/// [`Bytes`] and frames records by *slicing*: each body is an O(1)
/// refcounted view of the archive buffer, and the attribute blocks handed
/// to the wire decoder (and memoized in the [`AttrCache`]) alias the same
/// allocation. The only per-record copies left are the decoded structured
/// values themselves.
///
/// Reads the same format, honors the same [`ReadMode`] semantics, and
/// yields bit-identical records to `MrtReader` over the same bytes.
pub struct MrtBytesReader {
    buf: Bytes,
    mode: ReadMode,
    records_read: u64,
    records_skipped: u64,
    finished: bool,
    cache: CacheSlot,
}

/// The reader's attribute-block memo: its own table, or a handle shared
/// with sibling readers (one fleet-wide decode per distinct block).
enum CacheSlot {
    Owned(AttrCache),
    Shared(SharedAttrCache),
}

impl MrtBytesReader {
    /// Strict reader over `archive`.
    pub fn new(archive: impl Into<Bytes>) -> Self {
        MrtBytesReader {
            buf: archive.into(),
            mode: ReadMode::Strict,
            records_read: 0,
            records_skipped: 0,
            finished: false,
            cache: CacheSlot::Owned(AttrCache::new()),
        }
    }

    /// Tolerant reader (skips undecodable payloads).
    pub fn tolerant(archive: impl Into<Bytes>) -> Self {
        MrtBytesReader { mode: ReadMode::Tolerant, ..Self::new(archive) }
    }

    /// Strict reader whose attribute-block memo is `cache`, shared with
    /// other readers of the same fleet: a block already decoded by any
    /// sibling is served from the shared table, so every collector's
    /// copy of the same path aliases one allocation.
    pub fn with_shared_cache(archive: impl Into<Bytes>, cache: SharedAttrCache) -> Self {
        MrtBytesReader { cache: CacheSlot::Shared(cache), ..Self::new(archive) }
    }

    /// Records successfully decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Records skipped (tolerant mode only).
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// The reader's error-handling mode.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// The attribute-block memo table (hit/miss counters for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics for a [`MrtBytesReader::with_shared_cache`] reader — inspect
    /// the shared handle itself instead.
    pub fn attr_cache(&self) -> &AttrCache {
        match &self.cache {
            CacheSlot::Owned(cache) => cache,
            CacheSlot::Shared(_) => {
                panic!("attr_cache(): reader uses a shared cache; inspect the shared handle")
            }
        }
    }

    /// Slice the 12-byte common header off the buffer; `Ok(None)` at clean
    /// EOF.
    fn read_header(&mut self) -> Result<Option<(SimTime, u16, u16, u32)>, MrtError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.remaining() < 12 {
            return Err(CodecError::Truncated {
                what: "mrt header",
                needed: 12,
                available: self.buf.remaining(),
            }
            .into());
        }
        let ts = self.buf.get_u32();
        let ty = self.buf.get_u16();
        let subtype = self.buf.get_u16();
        let len = self.buf.get_u32();
        Ok(Some((SimTime::from_unix(ts as u64), ty, subtype, len)))
    }

    fn read_body(&mut self, len: u32) -> Result<Bytes, MrtError> {
        if len > MAX_RECORD_LEN {
            return Err(MrtError::OversizedRecord(len));
        }
        let len = len as usize;
        if self.buf.remaining() < len {
            return Err(CodecError::Truncated {
                what: "mrt body",
                needed: len,
                available: self.buf.remaining(),
            }
            .into());
        }
        Ok(self.buf.split_to(len))
    }

    /// Decode records until the next BGP4MP *message*, or `Ok(None)` at
    /// EOF. See [`MrtReader::next_message`].
    pub fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError> {
        while let Some(record) = self.next_record()? {
            if let MrtRecordBody::Message(msg) = record.body {
                return Ok(Some((record.timestamp, msg)));
            }
        }
        Ok(None)
    }

    /// Decode the next record, or `Ok(None)` at EOF.
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            let Some((timestamp, ty, subtype, len)) = self.read_header()? else {
                self.finished = true;
                return Ok(None);
            };
            let body = self.read_body(len)?;
            let decoded = match &mut self.cache {
                CacheSlot::Owned(cache) => decode_body(ty, subtype, body, Some(cache)),
                CacheSlot::Shared(cache) => {
                    // A poisoned lock only means a sibling reader panicked
                    // mid-probe; the memo table itself stays coherent
                    // (probes are read-or-insert, never partial writes).
                    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
                    decode_body(ty, subtype, body, Some(&mut guard))
                }
            };
            match decoded {
                Ok(body) => {
                    self.records_read += 1;
                    return Ok(Some(MrtRecord { timestamp, body }));
                }
                Err(e) => match self.mode {
                    ReadMode::Strict => return Err(e),
                    ReadMode::Tolerant => {
                        self.records_skipped += 1;
                        continue;
                    }
                },
            }
        }
    }
}

impl Iterator for MrtBytesReader {
    type Item = Result<MrtRecord, MrtError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                // After a framing error the stream offset is unreliable;
                // stop rather than emit garbage.
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

impl MessageStream for MrtBytesReader {
    fn next_message(&mut self) -> Result<Option<(SimTime, Bgp4mpMessage)>, MrtError> {
        MrtBytesReader::next_message(self)
    }

    fn records_read(&self) -> u64 {
        MrtBytesReader::records_read(self)
    }

    fn records_skipped(&self) -> u64 {
        MrtBytesReader::records_skipped(self)
    }
}

fn get_addr(buf: &mut Bytes, afi: u16) -> Result<IpAddr, MrtError> {
    match afi {
        1 => {
            CodecError::ensure("ipv4 address", buf.remaining(), 4)?;
            let mut o = [0u8; 4];
            buf.copy_to_slice(&mut o);
            Ok(IpAddr::V4(Ipv4Addr::from(o)))
        }
        2 => {
            CodecError::ensure("ipv6 address", buf.remaining(), 16)?;
            let mut o = [0u8; 16];
            buf.copy_to_slice(&mut o);
            Ok(IpAddr::V6(Ipv6Addr::from(o)))
        }
        other => Err(CodecError::BadValue { what: "afi", value: other as u64 }.into()),
    }
}

pub(crate) fn decode_body(
    ty: u16,
    subtype: u16,
    mut body: Bytes,
    cache: Option<&mut AttrCache>,
) -> Result<MrtRecordBody, MrtError> {
    let original_len = body.len();
    match (ty, subtype) {
        (mrt_type::BGP4MP | mrt_type::BGP4MP_ET, sub) => {
            if ty == mrt_type::BGP4MP_ET {
                CodecError::ensure("et microseconds", body.remaining(), 4)?;
                let _micros = body.get_u32();
            }
            let as4 = matches!(sub, bgp4mp_subtype::MESSAGE_AS4 | bgp4mp_subtype::STATE_CHANGE_AS4);
            let (peer_asn, local_asn) = if as4 {
                CodecError::ensure("as4 header", body.remaining(), 10)?;
                (Asn::new(body.get_u32()), Asn::new(body.get_u32()))
            } else {
                CodecError::ensure("as2 header", body.remaining(), 6)?;
                (Asn::new(body.get_u16() as u32), Asn::new(body.get_u16() as u32))
            };
            let _ifindex = body.get_u16();
            CodecError::ensure("afi", body.remaining(), 2)?;
            let afi = body.get_u16();
            let peer_ip = get_addr(&mut body, afi)?;
            let local_ip = get_addr(&mut body, afi)?;
            match sub {
                bgp4mp_subtype::MESSAGE | bgp4mp_subtype::MESSAGE_AS4 => {
                    let update = wire::decode_update_message_cached(body, cache)?;
                    Ok(MrtRecordBody::Message(Bgp4mpMessage {
                        peer_asn,
                        local_asn,
                        peer_ip,
                        local_ip,
                        update,
                    }))
                }
                bgp4mp_subtype::STATE_CHANGE | bgp4mp_subtype::STATE_CHANGE_AS4 => {
                    CodecError::ensure("state change", body.remaining(), 4)?;
                    let old = body.get_u16();
                    let new = body.get_u16();
                    let old_state = BgpState::from_code(old)
                        .ok_or(CodecError::BadValue { what: "old state", value: old as u64 })?;
                    let new_state = BgpState::from_code(new)
                        .ok_or(CodecError::BadValue { what: "new state", value: new as u64 })?;
                    Ok(MrtRecordBody::StateChange(Bgp4mpStateChange {
                        peer_asn,
                        local_asn,
                        peer_ip,
                        local_ip,
                        old_state,
                        new_state,
                    }))
                }
                other => Ok(MrtRecordBody::Unknown {
                    mrt_type: ty,
                    subtype: other,
                    length: original_len,
                }),
            }
        }
        (mrt_type::TABLE_DUMP_V2, td2_subtype::PEER_INDEX_TABLE) => {
            CodecError::ensure("peer index header", body.remaining(), 8)?;
            let mut collector_id = [0u8; 4];
            body.copy_to_slice(&mut collector_id);
            let name_len = body.get_u16() as usize;
            CodecError::ensure("view name", body.remaining(), name_len)?;
            let name_bytes = body.split_to(name_len);
            let view_name = String::from_utf8_lossy(&name_bytes).into_owned();
            CodecError::ensure("peer count", body.remaining(), 2)?;
            let count = body.get_u16() as usize;
            let mut peers = Vec::with_capacity(count);
            for _ in 0..count {
                CodecError::ensure("peer entry", body.remaining(), 5)?;
                let peer_type = body.get_u8();
                let mut bgp_id = [0u8; 4];
                body.copy_to_slice(&mut bgp_id);
                let ip = get_addr(&mut body, if peer_type & 0b01 != 0 { 2 } else { 1 })?;
                let asn = if peer_type & 0b10 != 0 {
                    CodecError::ensure("peer asn", body.remaining(), 4)?;
                    Asn::new(body.get_u32())
                } else {
                    CodecError::ensure("peer asn", body.remaining(), 2)?;
                    Asn::new(body.get_u16() as u32)
                };
                peers.push(PeerEntry { bgp_id, ip, asn });
            }
            Ok(MrtRecordBody::PeerIndexTable(PeerIndexTable { collector_id, view_name, peers }))
        }
        (mrt_type::TABLE_DUMP_V2, td2_subtype::RIB_IPV4_UNICAST) => {
            CodecError::ensure("rib header", body.remaining(), 4)?;
            let sequence = body.get_u32();
            let prefix = wire::decode_nlri(&mut body)?;
            CodecError::ensure("rib entry count", body.remaining(), 2)?;
            let count = body.get_u16() as usize;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                CodecError::ensure("rib entry", body.remaining(), 8)?;
                let peer_index = body.get_u16();
                let originated = SimTime::from_unix(body.get_u32() as u64);
                let attr_len = body.get_u16() as usize;
                CodecError::ensure("rib attributes", body.remaining(), attr_len)?;
                let attrs = wire::decode_attributes(body.split_to(attr_len))?;
                entries.push(RibPeerEntry { peer_index, originated, attrs });
            }
            Ok(MrtRecordBody::RibIpv4(RibEntry { sequence, prefix, entries }))
        }
        (ty, subtype) => Ok(MrtRecordBody::Unknown { mrt_type: ty, subtype, length: original_len }),
    }
}

#[cfg(test)]
mod tests {
    use bh_bgp_types::attrs::PathAttributes;
    use bh_bgp_types::update::BgpUpdate;

    use super::*;
    use crate::write::MrtWriter;

    fn one_update_archive() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = MrtWriter::new(&mut buf);
        let mut update = BgpUpdate::new(PathAttributes::basic(
            "6939 64500".parse().unwrap(),
            "10.0.0.9".parse().unwrap(),
        ));
        update.announce_v4("130.149.1.1/32".parse().unwrap());
        w.write_update(
            SimTime::from_unix(5),
            Asn::new(6939),
            "10.0.0.1".parse().unwrap(),
            Asn::new(65000),
            "10.0.0.2".parse().unwrap(),
            &update,
        )
        .unwrap();
        buf
    }

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = MrtReader::new(&[][..]);
        assert!(r.next_record().unwrap().is_none());
        assert!(r.next().is_none());
    }

    #[test]
    fn truncated_header_is_error() {
        let buf = one_update_archive();
        let mut r = MrtReader::new(&buf[..6]);
        assert!(matches!(r.next_record(), Err(MrtError::Codec(_))));
    }

    #[test]
    fn truncated_body_is_error() {
        let buf = one_update_archive();
        let mut r = MrtReader::new(&buf[..buf.len() - 3]);
        assert!(matches!(r.next_record(), Err(MrtError::Codec(_))));
    }

    #[test]
    fn iterator_stops_after_framing_error() {
        let buf = one_update_archive();
        let mut it = MrtReader::new(&buf[..buf.len() - 3]);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&mrt_type::BGP4MP.to_be_bytes());
        buf.extend_from_slice(&bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
        buf.extend_from_slice(&(MAX_RECORD_LEN + 1).to_be_bytes());
        let mut r = MrtReader::new(&buf[..]);
        assert!(matches!(r.next_record(), Err(MrtError::OversizedRecord(_))));
    }

    #[test]
    fn unknown_record_types_pass_through() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(&99u16.to_be_bytes()); // unknown type
        buf.extend_from_slice(&0u16.to_be_bytes());
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let mut r = MrtReader::new(&buf[..]);
        let rec = r.next_record().unwrap().unwrap();
        assert!(matches!(rec.body, MrtRecordBody::Unknown { mrt_type: 99, subtype: 0, length: 3 }));
    }

    #[test]
    fn tolerant_mode_skips_corrupt_payload_and_keeps_framing() {
        let mut buf = Vec::new();
        // Record 1: corrupt payload (BGP4MP MESSAGE_AS4 with garbage body
        // of plausible length).
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&mrt_type::BGP4MP.to_be_bytes());
        buf.extend_from_slice(&bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        // Record 2: a valid update.
        buf.extend_from_slice(&one_update_archive());

        // Strict reader errors.
        let mut strict = MrtReader::new(&buf[..]);
        assert!(strict.next_record().is_err());

        // Tolerant reader recovers the second record.
        let mut tolerant = MrtReader::tolerant(&buf[..]);
        let rec = tolerant.next_record().unwrap().unwrap();
        assert!(matches!(rec.body, MrtRecordBody::Message(_)));
        assert!(tolerant.next_record().unwrap().is_none());
        assert_eq!(tolerant.records_skipped(), 1);
        assert_eq!(tolerant.records_read(), 1);
    }

    #[test]
    fn tolerant_mode_counts_every_skip_across_the_stream() {
        // Corrupt records interleaved with valid ones: each skip is
        // counted and every valid record still decodes.
        let corrupt = |buf: &mut Vec<u8>| {
            buf.extend_from_slice(&1u32.to_be_bytes());
            buf.extend_from_slice(&mrt_type::BGP4MP.to_be_bytes());
            buf.extend_from_slice(&bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
            buf.extend_from_slice(&4u32.to_be_bytes());
            buf.extend_from_slice(&[0xba, 0xad, 0xf0, 0x0d]);
        };
        let mut buf = Vec::new();
        corrupt(&mut buf);
        buf.extend_from_slice(&one_update_archive());
        corrupt(&mut buf);
        corrupt(&mut buf);
        buf.extend_from_slice(&one_update_archive());

        let mut r = MrtReader::tolerant(&buf[..]);
        assert_eq!(r.mode(), ReadMode::Tolerant);
        let mut read = 0;
        while r.next_record().unwrap().is_some() {
            read += 1;
        }
        assert_eq!(read, 2);
        assert_eq!(r.records_read(), 2);
        assert_eq!(r.records_skipped(), 3);
    }

    #[test]
    fn et_records_fold_microseconds() {
        // Hand-build a BGP4MP_ET STATE_CHANGE_AS4.
        let mut body = Vec::new();
        body.extend_from_slice(&123_456u32.to_be_bytes()); // microseconds
        body.extend_from_slice(&6939u32.to_be_bytes());
        body.extend_from_slice(&65000u32.to_be_bytes());
        body.extend_from_slice(&0u16.to_be_bytes());
        body.extend_from_slice(&1u16.to_be_bytes()); // AFI v4
        body.extend_from_slice(&[10, 0, 0, 1]);
        body.extend_from_slice(&[10, 0, 0, 2]);
        body.extend_from_slice(&6u16.to_be_bytes());
        body.extend_from_slice(&1u16.to_be_bytes());
        let mut buf = Vec::new();
        buf.extend_from_slice(&99u32.to_be_bytes());
        buf.extend_from_slice(&mrt_type::BGP4MP_ET.to_be_bytes());
        buf.extend_from_slice(&bgp4mp_subtype::STATE_CHANGE_AS4.to_be_bytes());
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&body);
        let mut r = MrtReader::new(&buf[..]);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.timestamp, SimTime::from_unix(99));
        match rec.body {
            MrtRecordBody::StateChange(sc) => {
                assert_eq!(sc.old_state, BgpState::Established);
                assert_eq!(sc.new_state, BgpState::Idle);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn as2_message_records_are_read() {
        // Hand-build a legacy MESSAGE (2-byte AS) record with a KEEPALIVE.
        let mut body = Vec::new();
        body.extend_from_slice(&6939u16.to_be_bytes());
        body.extend_from_slice(&65000u16.to_be_bytes());
        body.extend_from_slice(&0u16.to_be_bytes());
        body.extend_from_slice(&1u16.to_be_bytes());
        body.extend_from_slice(&[10, 0, 0, 1]);
        body.extend_from_slice(&[10, 0, 0, 2]);
        body.extend_from_slice(&[0xFF; 16]);
        body.extend_from_slice(&19u16.to_be_bytes());
        body.push(4); // KEEPALIVE
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&mrt_type::BGP4MP.to_be_bytes());
        buf.extend_from_slice(&bgp4mp_subtype::MESSAGE.to_be_bytes());
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(&body);
        let mut r = MrtReader::new(&buf[..]);
        let rec = r.next_record().unwrap().unwrap();
        match rec.body {
            MrtRecordBody::Message(m) => {
                assert_eq!(m.peer_asn, Asn::new(6939));
                assert!(m.update.is_none()); // KEEPALIVE → no update
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn next_message_skips_non_message_records() {
        // State change, then an update: next_message lands on the update.
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            w.write_state_change(
                SimTime::from_unix(1),
                Asn::new(6939),
                "10.0.0.1".parse().unwrap(),
                Asn::new(65000),
                "10.0.0.2".parse().unwrap(),
                BgpState::Idle,
                BgpState::Established,
            )
            .unwrap();
        }
        buf.extend_from_slice(&one_update_archive());
        let mut r = MrtReader::new(&buf[..]);
        let (time, msg) = r.next_message().unwrap().unwrap();
        assert_eq!(time, SimTime::from_unix(5));
        assert_eq!(msg.peer_asn, Asn::new(6939));
        assert!(msg.update.is_some());
        assert!(r.next_message().unwrap().is_none());
    }

    #[test]
    fn multi_record_stream_reads_in_order() {
        let mut buf = Vec::new();
        for _ in 0..5 {
            buf.extend_from_slice(&one_update_archive());
        }
        let records: Vec<_> = MrtReader::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        assert_eq!(records.len(), 5);
    }

    #[test]
    fn bytes_reader_matches_read_reader() {
        let mut buf = Vec::new();
        for _ in 0..5 {
            buf.extend_from_slice(&one_update_archive());
        }
        let copied: Vec<_> = MrtReader::new(&buf[..]).collect::<Result<_, _>>().unwrap();
        let sliced: Vec<_> = MrtBytesReader::new(buf).collect::<Result<_, _>>().unwrap();
        assert_eq!(copied, sliced);
    }

    #[test]
    fn bytes_reader_repeated_attr_blocks_hit_the_cache() {
        let mut buf = Vec::new();
        for _ in 0..4 {
            buf.extend_from_slice(&one_update_archive());
        }
        let mut r = MrtBytesReader::new(buf);
        while r.next_message().unwrap().is_some() {}
        assert_eq!(r.records_read(), 4);
        assert_eq!(r.attr_cache().misses(), 1, "identical attr blocks decode once");
        assert_eq!(r.attr_cache().hits(), 3);
    }

    #[test]
    fn bytes_reader_empty_input_is_clean_eof() {
        let mut r = MrtBytesReader::new(Vec::new());
        assert!(r.next_record().unwrap().is_none());
        assert!(r.next().is_none());
    }

    #[test]
    fn bytes_reader_truncation_and_tolerance_match_read_reader() {
        let buf = one_update_archive();
        // Truncated header.
        let mut r = MrtBytesReader::new(buf[..6].to_vec());
        assert!(matches!(r.next_record(), Err(MrtError::Codec(_))));
        // Truncated body, and the iterator stops after the framing error.
        let mut it = MrtBytesReader::new(buf[..buf.len() - 3].to_vec());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
        // Tolerant mode skips a corrupt payload but keeps framing.
        let mut noisy = Vec::new();
        noisy.extend_from_slice(&1u32.to_be_bytes());
        noisy.extend_from_slice(&mrt_type::BGP4MP.to_be_bytes());
        noisy.extend_from_slice(&bgp4mp_subtype::MESSAGE_AS4.to_be_bytes());
        noisy.extend_from_slice(&4u32.to_be_bytes());
        noisy.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        noisy.extend_from_slice(&buf);
        let mut tolerant = MrtBytesReader::tolerant(noisy);
        assert_eq!(tolerant.mode(), ReadMode::Tolerant);
        let rec = tolerant.next_record().unwrap().unwrap();
        assert!(matches!(rec.body, MrtRecordBody::Message(_)));
        assert!(tolerant.next_record().unwrap().is_none());
        assert_eq!(tolerant.records_skipped(), 1);
        assert_eq!(tolerant.records_read(), 1);
    }

    #[test]
    fn bytes_reader_bodies_alias_the_archive_buffer() {
        // The reader must slice, not copy: drain a two-record archive and
        // confirm the per-record work left no body-sized allocations by
        // checking the messages decode equal through both paths while the
        // bytes reader's source buffer is shared (Bytes::from(Vec) is
        // zero-copy, so any equal output proves the slicing path).
        let mut buf = Vec::new();
        buf.extend_from_slice(&one_update_archive());
        buf.extend_from_slice(&one_update_archive());
        let shared = Bytes::from(buf);
        let mut r = MrtBytesReader::new(shared.clone());
        let mut n = 0;
        while let Some((time, msg)) = r.next_message().unwrap() {
            assert_eq!(time, SimTime::from_unix(5));
            assert!(msg.update.is_some());
            n += 1;
        }
        assert_eq!(n, 2);
    }
}
