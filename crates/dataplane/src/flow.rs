//! IPFIX-style flow measurement at an IXP (Fig. 9(c) and the §10 passive
//! validation).
//!
//! Models the paper's setup: traffic traces sampled 1:10,000 from the
//! switching fabric of a major IXP. Members send traffic toward blackholed
//! prefixes; members that honor the route server's blackhole route drop
//! at their ingress (traffic counted *below* the zero line), members that
//! don't honor it — because they filter /32s or don't use the route
//! server — keep forwarding (*above* the line). The paper found 80 % of
//! the still-forwarded traffic came from fewer than ten members.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_bgp_types::time::{SimDuration, SimTime};
use bh_topology::Ixp;

/// Sampling rate of the IPFIX traces (1 out of `SAMPLING_RATE` packets).
pub const SAMPLING_RATE: u64 = 10_000;

/// Why a member keeps sending traffic to a blackholed prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IgnoreReason {
    /// The member filters /32 announcements (router config not updated).
    FiltersHostRoutes,
    /// The member does not peer with the route server at all.
    NoRouteServerSession,
}

/// Per-member behavior toward blackhole routes at this IXP.
#[derive(Debug, Clone)]
pub struct MemberBehavior {
    /// The member.
    pub asn: Asn,
    /// `None` = honors the blackhole (drops); `Some(reason)` = keeps
    /// forwarding.
    pub ignores: Option<IgnoreReason>,
    /// Mean traffic rate toward a popular destination (packets/second,
    /// pre-sampling).
    pub mean_rate: f64,
}

/// One hour of traffic to one blackholed prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourPoint {
    /// Hour start.
    pub time: SimTime,
    /// Sampled packets dropped at member ingress (the below-zero stack).
    pub dropped: u64,
    /// Sampled packets still forwarded across the fabric.
    pub forwarded: u64,
}

/// The flow experiment for one IXP.
pub struct FlowSim {
    members: Vec<MemberBehavior>,
    rng: StdRng,
}

impl FlowSim {
    /// Build per-member behaviors for an IXP. `honor_fraction` is the
    /// share of members that accept and honor the /32 blackhole route
    /// (the paper's one-day validation found about one third of traffic
    /// sources dropping).
    pub fn new(ixp: &Ixp, honor_fraction: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut members = Vec::with_capacity(ixp.members.len());
        for &asn in &ixp.members {
            let ignores = if rng.gen_bool(honor_fraction) {
                None
            } else if rng.gen_bool(0.6) {
                Some(IgnoreReason::FiltersHostRoutes)
            } else {
                Some(IgnoreReason::NoRouteServerSession)
            };
            // Heavy-tailed member rates: a few members dominate traffic
            // (80 % of leaked traffic from <10 members).
            let mean_rate = if rng.gen_bool(0.08) {
                rng.gen_range(20_000.0..120_000.0)
            } else {
                rng.gen_range(50.0..2_000.0)
            };
            members.push(MemberBehavior { asn, ignores, mean_rate });
        }
        FlowSim { members, rng }
    }

    /// The member behaviors (for reporting).
    pub fn members(&self) -> &[MemberBehavior] {
        &self.members
    }

    /// Simulate one week of hourly traffic toward a blackholed prefix
    /// that stays blackholed throughout (the Fig. 9(c) setting), starting
    /// at `start`.
    pub fn week_series(&mut self, start: SimTime, senders: usize) -> Vec<HourPoint> {
        let sender_set: Vec<MemberBehavior> =
            self.members.iter().take(senders.min(self.members.len())).cloned().collect();
        let mut out = Vec::with_capacity(24 * 7);
        for hour in 0..(24 * 7) {
            let time = start + SimDuration::hours(hour);
            // Diurnal modulation: peak in the evening, trough at night.
            let tod = (hour % 24) as f64;
            let diurnal = 0.6
                + 0.4 * (-((tod - 19.0) * (tod - 19.0)) / 40.0).exp()
                + 0.25 * (-((tod - 12.0) * (tod - 12.0)) / 60.0).exp();
            let mut dropped = 0u64;
            let mut forwarded = 0u64;
            for member in &sender_set {
                let packets = member.mean_rate * 3600.0 * diurnal * self.rng.gen_range(0.85..1.15);
                let sampled = (packets / SAMPLING_RATE as f64).round() as u64;
                if member.ignores.is_some() {
                    forwarded += sampled;
                } else {
                    dropped += sampled;
                }
            }
            out.push(HourPoint { time, dropped, forwarded });
        }
        out
    }

    /// §10 one-day validation: of the members sending traffic to
    /// blackholed /32s, what fraction drop for at least one of them?
    pub fn dropping_member_fraction(&self) -> f64 {
        let dropping = self.members.iter().filter(|m| m.ignores.is_none()).count();
        if self.members.is_empty() {
            0.0
        } else {
            dropping as f64 / self.members.len() as f64
        }
    }

    /// The members responsible for the forwarded (non-dropped) traffic,
    /// heaviest first, with their share of the total leak.
    pub fn leak_concentration(&self) -> Vec<(Asn, f64)> {
        let ignorers: Vec<&MemberBehavior> =
            self.members.iter().filter(|m| m.ignores.is_some()).collect();
        let total: f64 = ignorers.iter().map(|m| m.mean_rate).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut out: Vec<(Asn, f64)> =
            ignorers.iter().map(|m| (m.asn, m.mean_rate / total)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite"));
        out
    }
}

/// Control-plane-visible blackholings with no data-plane reduction — the
/// §10 misconfiguration analysis (red region of Fig. 9(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoDropCause {
    /// The user's IRR/RIR entries are missing so the route server never
    /// redistributed the announcement.
    NotRedistributed,
    /// The announcement carried an invalid next-hop or wrong community.
    BrokenAnnouncement,
}

/// Classify ground-truth events that show no data-plane drop.
pub fn classify_no_drop(irr_registered: bool, accepted: &BTreeSet<Asn>) -> Option<NoDropCause> {
    if !irr_registered {
        return Some(NoDropCause::NotRedistributed);
    }
    if accepted.is_empty() {
        return Some(NoDropCause::BrokenAnnouncement);
    }
    None
}

/// Aggregate weekly series across prefixes into a per-prefix map, the
/// exact Fig. 9(c) presentation (top stack = forwarded, bottom = dropped).
pub fn fig9c_series(
    sim: &mut FlowSim,
    start: SimTime,
    prefixes: &[Ipv4Prefix],
    senders: usize,
) -> BTreeMap<Ipv4Prefix, Vec<HourPoint>> {
    let mut out = BTreeMap::new();
    for prefix in prefixes {
        out.insert(*prefix, sim.week_series(start, senders));
    }
    out
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn big_ixp() -> Ixp {
        let t = TopologyBuilder::new(TopologyConfig::tiny(61)).build();
        t.ixps().iter().max_by_key(|ixp| ixp.members.len()).expect("topology has IXPs").clone()
    }

    #[test]
    fn week_series_shape() {
        let ixp = big_ixp();
        // Seed chosen so the deterministic first-`senders` slice contains
        // both honoring and ignoring members under the vendored SplitMix64
        // stream (which differs from upstream rand's ChaCha StdRng).
        let mut sim = FlowSim::new(&ixp, 0.35, 5);
        let series = sim.week_series(SimTime::from_ymd(2017, 3, 20), 10);
        assert_eq!(series.len(), 168);
        let total_dropped: u64 = series.iter().map(|p| p.dropped).sum();
        let total_forwarded: u64 = series.iter().map(|p| p.forwarded).sum();
        // Both stacks are populated: some members honor, some don't.
        assert!(total_dropped > 0, "nothing dropped");
        assert!(total_forwarded > 0, "nothing forwarded");
        // Diurnal pattern: peak hour is at least 1.3x the trough.
        let max = series.iter().map(|p| p.dropped + p.forwarded).max().unwrap();
        let min = series.iter().map(|p| p.dropped + p.forwarded).min().unwrap();
        assert!(max as f64 >= min as f64 * 1.3, "no diurnal variation: {min}..{max}");
    }

    #[test]
    fn dropping_fraction_matches_config() {
        let ixp = big_ixp();
        let sim = FlowSim::new(&ixp, 0.33, 5);
        let f = sim.dropping_member_fraction();
        assert!(f > 0.1 && f < 0.6, "fraction {f}");
    }

    #[test]
    fn leak_is_concentrated() {
        let ixp = big_ixp();
        let sim = FlowSim::new(&ixp, 0.33, 7);
        let conc = sim.leak_concentration();
        if conc.len() >= 10 {
            let top10: f64 = conc.iter().take(10).map(|(_, s)| s).sum();
            assert!(top10 > 0.5, "top-10 leak share only {top10}");
        }
        // Shares sum to 1.
        let sum: f64 = conc.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9 || conc.is_empty());
    }

    #[test]
    fn no_drop_classification() {
        assert_eq!(classify_no_drop(false, &BTreeSet::new()), Some(NoDropCause::NotRedistributed));
        assert_eq!(classify_no_drop(true, &BTreeSet::new()), Some(NoDropCause::BrokenAnnouncement));
        assert_eq!(classify_no_drop(true, &BTreeSet::from([Asn::new(1)])), None);
    }

    #[test]
    fn fig9c_covers_requested_prefixes() {
        let ixp = big_ixp();
        let mut sim = FlowSim::new(&ixp, 0.33, 9);
        let prefixes: Vec<Ipv4Prefix> =
            vec!["9.9.9.9/32".parse().unwrap(), "8.8.8.8/32".parse().unwrap()];
        let map = fig9c_series(&mut sim, SimTime::from_ymd(2017, 3, 20), &prefixes, 8);
        assert_eq!(map.len(), 2);
        for series in map.values() {
            assert_eq!(series.len(), 168);
        }
    }

    #[test]
    fn behaviors_are_deterministic() {
        let ixp = big_ixp();
        let a = FlowSim::new(&ixp, 0.33, 11);
        let b = FlowSim::new(&ixp, 0.33, 11);
        for (x, y) in a.members().iter().zip(b.members()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.ignores, y.ignores);
        }
    }
}
