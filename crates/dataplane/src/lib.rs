//! # bh-dataplane — data-plane substrates
//!
//! The paper validates control-plane inference with data-plane
//! measurements; this crate provides the synthetic equivalents:
//!
//! * [`traceroute`] — a router-level traceroute simulator over the
//!   valley-free forwarding paths, with ingress discarding at blackholing
//!   ASes and ICMP-blocking noise (substitutes for RIPE Atlas probes).
//! * [`atlas`] — the §10 probe-selection strategy: four groups
//!   (downstream cone / upstream cone / peering / inside the user AS),
//!   uniform sampling with shortfall filling.
//! * [`efficacy`] — the Fig. 9(a)/(b) experiment: during-vs-after and
//!   blackholed-vs-control path-length deltas at IP and AS level.
//! * [`flow`] — IPFIX-style 1:10,000-sampled flow series on an IXP
//!   fabric: honored blackholes drop at member ingress, non-honoring
//!   members leak (Fig. 9(c)); plus the §10 misconfiguration taxonomy.
//! * [`scans`] — scans.io-style service profiles (Fig. 7(a)), HTTP
//!   response rates, Alexa-style hosting, tarpits, and the
//!   suspicious-activity feeds of §8.

pub mod atlas;
pub mod efficacy;
pub mod flow;
pub mod scans;
pub mod traceroute;

pub use atlas::{select_probes, Probe, ProbeGroup};
pub use efficacy::{run_experiment, EfficacyInput, EfficacyReport, ProbeMeasurement};
pub use flow::{
    classify_no_drop, fig9c_series, FlowSim, HourPoint, IgnoreReason, MemberBehavior, NoDropCause,
    SAMPLING_RATE,
};
pub use scans::{
    reputation_feed, service_histogram, AlexaDomain, PrefixProfile, ReputationDay, ScanGenerator,
    Service, TLD_WEIGHTS,
};
pub use traceroute::{Hop, Traceroute, TracerouteSim};
