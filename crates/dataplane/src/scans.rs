//! scans.io-style service scans, web content, and reputation feeds
//! (§8: "Services/Applications on Blackholed IPs", "Web Servers and
//! Content", "Malicious Activity of Blackholed IPs").

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bh_bgp_types::prefix::Ipv4Prefix;

/// The scanned protocols, in the paper's Fig. 7(a) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Service {
    /// HTTP (80/tcp) — the dominant service (53 % of prefixes).
    Http,
    /// HTTPS (443/tcp).
    Https,
    /// SSH (22/tcp).
    Ssh,
    /// FTP (21/tcp).
    Ftp,
    /// Telnet (23/tcp).
    Telnet,
    /// DNS (53/udp).
    Dns,
    /// NTP (123/udp).
    Ntp,
    /// SMTP (25/tcp).
    Smtp,
    /// SMTPS (465/tcp).
    Smtps,
    /// POP3 (110/tcp).
    Pop3,
    /// POP3S (995/tcp).
    Pop3s,
    /// IMAP (143/tcp).
    Imap,
    /// IMAPS (993/tcp).
    Imaps,
}

impl Service {
    /// All services in figure order.
    pub const ALL: [Service; 13] = [
        Service::Http,
        Service::Https,
        Service::Ssh,
        Service::Ftp,
        Service::Telnet,
        Service::Dns,
        Service::Ntp,
        Service::Smtp,
        Service::Smtps,
        Service::Pop3,
        Service::Pop3s,
        Service::Imap,
        Service::Imaps,
    ];

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            Service::Http => "HTTP",
            Service::Https => "HTTPS",
            Service::Ssh => "SSH",
            Service::Ftp => "FTP",
            Service::Telnet => "Telnet",
            Service::Dns => "DNS",
            Service::Ntp => "NTP",
            Service::Smtp => "SMTP",
            Service::Smtps => "SMTPS",
            Service::Pop3 => "POP3",
            Service::Pop3s => "POP3S",
            Service::Imap => "IMAP",
            Service::Imaps => "IMAPS",
        }
    }

    /// The six mail protocols.
    pub const MAIL: [Service; 6] = [
        Service::Smtp,
        Service::Smtps,
        Service::Pop3,
        Service::Pop3s,
        Service::Imap,
        Service::Imaps,
    ];
}

/// The scan profile of one blackholed prefix (services aggregated over
/// its hosts, as the paper does).
#[derive(Debug, Clone)]
pub struct PrefixProfile {
    /// The prefix.
    pub prefix: Ipv4Prefix,
    /// Open services.
    pub services: BTreeSet<Service>,
    /// Tarpit: accepts TCP on every probed port.
    pub tarpit: bool,
    /// Responds to HTTP GET with an actual HTTP response (61 % of
    /// blackholed hosts vs ~90 % baseline).
    pub http_responds: bool,
    /// Hosts a domain in the Alexa-style top-1M (~3 % of HTTP hosts).
    pub alexa_domain: Option<AlexaDomain>,
}

/// A popular hosted domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlexaDomain {
    /// Site rank (1-based).
    pub rank: u32,
    /// Top-level domain.
    pub tld: &'static str,
}

/// TLD distribution of blackholed Alexa domains (§8: .com 38 %, .ru 16 %,
/// .org 11.9 %, .net 6 %, .se 3 %, remainder long tail).
pub const TLD_WEIGHTS: &[(&str, u32)] = &[
    ("com", 380),
    ("ru", 160),
    ("org", 119),
    ("net", 60),
    ("se", 30),
    ("de", 28),
    ("pl", 25),
    ("br", 24),
    ("ua", 22),
    ("io", 20),
    ("info", 18),
    ("fr", 17),
    ("it", 16),
    ("nl", 15),
    ("cz", 14),
    ("tr", 12),
];

/// The scan synthesizer.
pub struct ScanGenerator {
    rng: StdRng,
}

impl ScanGenerator {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        ScanGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Profile one blackholed prefix. The probabilities reproduce the
    /// paper's service mix: HTTP 53 %, strong HTTP co-location for FTP
    /// (90 %) and SSH (79 %), ~10 % full mail stacks, ~4 % tarpits, and
    /// ~40 % of prefixes with no identified service at all.
    pub fn profile(&mut self, prefix: Ipv4Prefix) -> PrefixProfile {
        let rng = &mut self.rng;
        let mut services = BTreeSet::new();
        let tarpit = rng.gen_bool(0.04);
        if tarpit {
            services.extend(Service::ALL);
        } else if rng.gen_bool(0.60) {
            // At least one service identified.
            let http = rng.gen_bool(0.53 / 0.60);
            if http {
                services.insert(Service::Http);
                if rng.gen_bool(0.45) {
                    services.insert(Service::Https);
                }
                // Co-location: 90 % of FTP and 79 % of SSH servers sit
                // with HTTP (default hoster images).
                if rng.gen_bool(0.35) {
                    services.insert(Service::Ftp);
                }
                if rng.gen_bool(0.40) {
                    services.insert(Service::Ssh);
                }
            } else {
                // Non-web services.
                if rng.gen_bool(0.3) {
                    services.insert(Service::Ssh);
                }
                if rng.gen_bool(0.12) {
                    services.insert(Service::Ftp);
                }
                if rng.gen_bool(0.2) {
                    services.insert(Service::Dns);
                }
                if rng.gen_bool(0.12) {
                    services.insert(Service::Ntp);
                }
                if rng.gen_bool(0.1) {
                    services.insert(Service::Telnet);
                }
            }
            if rng.gen_bool(0.10) {
                // Full mail stack.
                services.extend(Service::MAIL);
            } else if rng.gen_bool(0.12) {
                services.insert(Service::Smtp);
            }
            if services.is_empty() {
                services.insert(Service::Dns);
            }
        }
        let has_http = services.contains(&Service::Http);
        let http_responds = has_http && rng.gen_bool(0.61);
        let alexa_domain = if has_http && rng.gen_bool(0.03) {
            let weights: u32 = TLD_WEIGHTS.iter().map(|(_, w)| w).sum();
            let mut pick = rng.gen_range(0..weights);
            let mut tld = TLD_WEIGHTS[0].0;
            for (t, w) in TLD_WEIGHTS {
                if pick < *w {
                    tld = t;
                    break;
                }
                pick -= w;
            }
            Some(AlexaDomain { rank: rng.gen_range(1_000..1_000_000), tld })
        } else {
            None
        };
        PrefixProfile { prefix, services, tarpit, http_responds, alexa_domain }
    }

    /// Profile a whole prefix set.
    pub fn profile_all(&mut self, prefixes: &[Ipv4Prefix]) -> Vec<PrefixProfile> {
        prefixes.iter().map(|p| self.profile(*p)).collect()
    }
}

/// The Fig. 7(a) histogram: per service, the number of blackholed
/// prefixes offering it, plus the NONE bucket.
pub fn service_histogram(profiles: &[PrefixProfile]) -> (BTreeMap<Service, usize>, usize) {
    let mut hist: BTreeMap<Service, usize> = BTreeMap::new();
    let mut none = 0usize;
    for profile in profiles {
        if profile.services.is_empty() {
            none += 1;
            continue;
        }
        for s in &profile.services {
            *hist.entry(*s).or_default() += 1;
        }
    }
    (hist, none)
}

/// Daily suspicious-activity feed (§8: on a daily basis 400–900 matches,
/// more than 90 % probers, ~2 % both; 500–800 IPs in login attempts;
/// union ≈2 % of blackholed prefixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReputationDay {
    /// Day offset.
    pub day: u32,
    /// Vulnerability probers observed.
    pub probers: u32,
    /// Port scanners observed.
    pub scanners: u32,
    /// IPs that did both.
    pub both: u32,
    /// IPs in repeated login attempts.
    pub login_attempts: u32,
}

/// Generate a daily feed scaled to the size of the blackholed population.
pub fn reputation_feed(seed: u64, days: u32, blackholed_prefixes: usize) -> Vec<ReputationDay> {
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = (blackholed_prefixes as f64 / 20_000.0).clamp(0.05, 10.0);
    (0..days)
        .map(|day| {
            let matches = (rng.gen_range(400.0..900.0) * scale) as u32;
            let both = (matches as f64 * 0.02) as u32;
            let probers = (matches as f64 * rng.gen_range(0.90..0.96)) as u32;
            let scanners = matches - probers + both;
            let login_attempts = (rng.gen_range(500.0..800.0) * scale) as u32;
            ReputationDay { day, probers, scanners, both, login_attempts }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles(n: usize, seed: u64) -> Vec<PrefixProfile> {
        let mut generator = ScanGenerator::new(seed);
        let prefixes: Vec<Ipv4Prefix> = (0..n)
            .map(|i| {
                Ipv4Prefix::from_raw(
                    ((50 + (i >> 16)) as u32) << 24 | (i as u32 & 0xFFFF) << 8 | 7,
                    32,
                )
            })
            .collect();
        generator.profile_all(&prefixes)
    }

    #[test]
    fn http_dominates() {
        let profiles = profiles(5_000, 1);
        let (hist, none) = service_histogram(&profiles);
        let http = hist.get(&Service::Http).copied().unwrap_or(0);
        assert!(
            (0.45..0.62).contains(&(http as f64 / profiles.len() as f64)),
            "HTTP fraction {}",
            http as f64 / profiles.len() as f64
        );
        for (service, count) in &hist {
            if *service != Service::Http {
                assert!(count <= &http, "{service:?} beats HTTP");
            }
        }
        // ~40% of prefixes have no identified service.
        let none_fraction = none as f64 / profiles.len() as f64;
        assert!((0.3..0.5).contains(&none_fraction), "none {none_fraction}");
    }

    #[test]
    fn tarpits_expose_all_ports() {
        let profiles = profiles(5_000, 2);
        let tarpits: Vec<_> = profiles.iter().filter(|p| p.tarpit).collect();
        let fraction = tarpits.len() as f64 / profiles.len() as f64;
        assert!((0.02..0.07).contains(&fraction), "tarpit fraction {fraction}");
        for t in tarpits {
            assert_eq!(t.services.len(), Service::ALL.len());
        }
    }

    #[test]
    fn http_response_rate_is_depressed() {
        let profiles = profiles(8_000, 3);
        let http: Vec<_> =
            profiles.iter().filter(|p| p.services.contains(&Service::Http)).collect();
        let responding = http.iter().filter(|p| p.http_responds).count();
        let rate = responding as f64 / http.len() as f64;
        assert!((0.55..0.67).contains(&rate), "response rate {rate} (paper: 61%)");
    }

    #[test]
    fn alexa_hosting_is_rare_with_papers_tlds() {
        let profiles = profiles(20_000, 4);
        let http_count = profiles.iter().filter(|p| p.services.contains(&Service::Http)).count();
        let alexa: Vec<_> = profiles.iter().filter_map(|p| p.alexa_domain.as_ref()).collect();
        let fraction = alexa.len() as f64 / http_count as f64;
        assert!((0.015..0.05).contains(&fraction), "alexa fraction {fraction}");
        // .com dominates, .ru second.
        let mut tld_counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &alexa {
            *tld_counts.entry(d.tld).or_default() += 1;
        }
        let com = tld_counts.get("com").copied().unwrap_or(0);
        let ru = tld_counts.get("ru").copied().unwrap_or(0);
        assert!(com > ru, "com {com} ru {ru}");
        for (tld, count) in &tld_counts {
            if *tld != "com" {
                assert!(*count <= com, "{tld} beats com");
            }
        }
    }

    #[test]
    fn mail_stacks_come_in_sixes() {
        let profiles = profiles(5_000, 5);
        let full_mail = profiles
            .iter()
            .filter(|p| !p.tarpit && Service::MAIL.iter().all(|m| p.services.contains(m)))
            .count();
        let fraction = full_mail as f64 / profiles.len() as f64;
        assert!((0.04..0.12).contains(&fraction), "full-mail fraction {fraction}");
    }

    #[test]
    fn reputation_feed_matches_paper_ranges() {
        let feed = reputation_feed(7, 30, 20_000);
        assert_eq!(feed.len(), 30);
        for day in &feed {
            let matches = day.probers + day.scanners - day.both;
            assert!((350..1000).contains(&matches), "matches {matches}");
            assert!(day.probers as f64 / matches as f64 > 0.85);
            assert!((450..850).contains(&day.login_attempts));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = profiles(100, 9);
        let b = profiles(100, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.services, y.services);
            assert_eq!(x.http_responds, y.http_responds);
        }
    }
}
