//! The blackholing-efficacy experiment (Fig. 9(a)/(b)).
//!
//! For each blackholing event: select Atlas-style probes, traceroute to
//! the blackholed host *during* the event and again *after* withdrawal,
//! plus a control traceroute to a non-blackholed neighbor in the same
//! /31. The paper reports the distributions of
//! `after − during` path-length differences (IP- and AS-level) and the
//! `control − blackholed` differences, keeping only events whose
//! destination was reachable after the event.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use bh_bgp_types::asn::Asn;
use bh_bgp_types::prefix::Ipv4Prefix;
use bh_topology::Topology;

use crate::atlas::select_probes;
use crate::traceroute::TracerouteSim;

/// One measured event for the efficacy analysis.
#[derive(Debug, Clone)]
pub struct EfficacyInput {
    /// The blackholed prefix (host routes expected).
    pub prefix: Ipv4Prefix,
    /// The blackholing user (owner of the prefix).
    pub user: Asn,
    /// ASes discarding traffic during the event (accepted providers and
    /// honoring IXP members).
    pub dropping: BTreeSet<Asn>,
}

/// Per-probe measurement outcome.
#[derive(Debug, Clone, Copy)]
pub struct ProbeMeasurement {
    /// Probe vantage AS.
    pub probe: Asn,
    /// IP-level path length during the event.
    pub ip_during: usize,
    /// IP-level path length after withdrawal.
    pub ip_after: usize,
    /// IP-level path length to the /31 neighbor during the event.
    pub ip_control: usize,
    /// AS-level path length during.
    pub as_during: usize,
    /// AS-level path length after.
    pub as_after: usize,
    /// AS-level length to the control target during.
    pub as_control: usize,
    /// Did traffic die at the destination AS or its direct upstream?
    pub dropped_at_edge: bool,
}

impl ProbeMeasurement {
    /// Fig. 9(a) red series: after − during (positive = blackholing
    /// shortened the path).
    pub fn ip_delta_after_during(&self) -> i64 {
        self.ip_after as i64 - self.ip_during as i64
    }

    /// Fig. 9(a) blue series: control − blackholed during the event.
    pub fn ip_delta_control(&self) -> i64 {
        self.ip_control as i64 - self.ip_during as i64
    }

    /// Fig. 9(b): AS-level after − during.
    pub fn as_delta_after_during(&self) -> i64 {
        self.as_after as i64 - self.as_during as i64
    }

    /// Fig. 9(b) control series.
    pub fn as_delta_control(&self) -> i64 {
        self.as_control as i64 - self.as_during as i64
    }
}

/// The experiment results.
#[derive(Debug, Clone, Default)]
pub struct EfficacyReport {
    /// All per-probe measurements across events.
    pub measurements: Vec<ProbeMeasurement>,
    /// Events skipped because the destination was unreachable even after
    /// the event (route changes / ICMP blocking, per the paper).
    pub skipped_events: usize,
    /// Events measured.
    pub measured_events: usize,
}

impl EfficacyReport {
    /// Mean IP-level shortening (the paper reports ≈5.9 hops).
    pub fn mean_ip_shortening(&self) -> f64 {
        mean(self.measurements.iter().map(|m| m.ip_delta_after_during() as f64))
    }

    /// Mean AS-level shortening (paper: 2–4 AS hops).
    pub fn mean_as_shortening(&self) -> f64 {
        mean(self.measurements.iter().map(|m| m.as_delta_after_during() as f64))
    }

    /// Fraction of paths that terminated earlier during blackholing
    /// (paper: >80 %).
    pub fn fraction_terminated_earlier(&self) -> f64 {
        fraction(self.measurements.iter(), |m| m.ip_delta_after_during() > 0)
    }

    /// Fraction of cases where traffic was dropped at the destination AS
    /// or its direct upstream (paper: 16 %).
    pub fn fraction_dropped_at_edge(&self) -> f64 {
        fraction(self.measurements.iter(), |m| m.dropped_at_edge)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn fraction<'a, T: 'a>(values: impl Iterator<Item = &'a T>, predicate: impl Fn(&T) -> bool) -> f64 {
    let mut hit = 0usize;
    let mut n = 0usize;
    for v in values {
        if predicate(v) {
            hit += 1;
        }
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        hit as f64 / n as f64
    }
}

/// Run the experiment over a set of events.
pub fn run_experiment(topology: &Topology, events: &[EfficacyInput], seed: u64) -> EfficacyReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tracer = TracerouteSim::new(topology, seed ^ 0xda7a);
    let mut report = EfficacyReport::default();
    let empty = BTreeSet::new();

    for event in events {
        let Some(target) = event.prefix.nth_addr(0) else {
            report.skipped_events += 1;
            continue;
        };
        let control_addr =
            event.prefix.sibling_host().and_then(|p| p.nth_addr(0)).unwrap_or(target);
        let probes = select_probes(topology, event.user, 4, &mut rng);
        let mut measured_any = false;
        for probe in probes {
            if probe.asn == event.user {
                // Inside-user probes see local routes; the paper's
                // during/after comparison is about external paths.
                continue;
            }
            let after = tracer.trace(probe.asn, event.user, target, &empty, true);
            if !after.reached {
                continue; // destination not reachable after: skip probe
            }
            let during = tracer.trace(probe.asn, event.user, target, &event.dropping, true);
            let control = tracer.trace(probe.asn, event.user, control_addr, &empty, true);
            // Where did the path die? At the destination AS or its
            // direct upstream = "dropped at the destination AS or the
            // upstream provider".
            let dropped_at_edge = {
                let last_as = during.hops.last().map(|h| h.asn);
                let upstreams = topology.providers_of(event.user);
                last_as == Some(event.user) || last_as.is_some_and(|a| upstreams.contains(&a))
            };
            report.measurements.push(ProbeMeasurement {
                probe: probe.asn,
                ip_during: during.ip_path_length(),
                ip_after: after.ip_path_length(),
                ip_control: control.ip_path_length(),
                as_during: during.as_path_length(),
                as_after: after.as_path_length(),
                as_control: control.as_path_length(),
                dropped_at_edge,
            });
            measured_any = true;
        }
        if measured_any {
            report.measured_events += 1;
        } else {
            report.skipped_events += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};
    use bh_workloads::capable_providers;

    use super::*;

    fn events(topology: &Topology, n: usize) -> Vec<EfficacyInput> {
        let mut out = Vec::new();
        for info in topology.ases() {
            if out.len() >= n {
                break;
            }
            if info.prefixes.is_empty() {
                continue;
            }
            // A victim blackholing at *all* of its upstreams plus its
            // IXPs, with every member honoring — the clean-efficacy case
            // the paper's >80% figure reflects.
            if capable_providers(topology, info.asn).is_empty() {
                continue;
            }
            let mut dropping: BTreeSet<Asn> = topology.providers_of(info.asn).into_iter().collect();
            for ixp in topology.ixps() {
                if ixp.has_member(info.asn) {
                    dropping.extend(ixp.members.iter().copied().filter(|m| *m != info.asn));
                }
            }
            if dropping.is_empty() {
                continue;
            }
            let host = info.prefixes[0].nth_addr(4).map(Ipv4Prefix::host).unwrap();
            out.push(EfficacyInput { prefix: host, user: info.asn, dropping });
        }
        out
    }

    #[test]
    fn blackholing_shortens_paths() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(23)).build();
        let evs = events(&t, 12);
        assert!(evs.len() >= 4, "need events to measure");
        let report = run_experiment(&t, &evs, 99);
        assert!(!report.measurements.is_empty());
        // The headline shape: paths terminate earlier during blackholing.
        assert!(
            report.fraction_terminated_earlier() > 0.5,
            "fraction {}",
            report.fraction_terminated_earlier()
        );
        assert!(report.mean_ip_shortening() > 0.0);
        assert!(report.mean_as_shortening() > 0.0);
    }

    #[test]
    fn control_targets_stay_reachable() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(23)).build();
        let evs = events(&t, 8);
        let report = run_experiment(&t, &evs, 99);
        for m in &report.measurements {
            // The control path is a full path; the during path is cut:
            // control should usually be at least as long.
            assert!(m.ip_control >= 1);
            assert!(m.ip_delta_control() >= 0, "control shorter than blackholed");
        }
    }

    #[test]
    fn empty_dropping_set_means_no_shortening() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(23)).build();
        let mut evs = events(&t, 5);
        for e in &mut evs {
            e.dropping.clear();
        }
        let report = run_experiment(&t, &evs, 99);
        for m in &report.measurements {
            assert_eq!(m.ip_delta_after_during(), 0);
            assert_eq!(m.as_delta_after_during(), 0);
        }
    }

    #[test]
    fn report_fractions_are_probabilities() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(23)).build();
        let evs = events(&t, 10);
        let report = run_experiment(&t, &evs, 7);
        for f in [report.fraction_terminated_earlier(), report.fraction_dropped_at_edge()] {
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(report.measured_events + report.skipped_events, evs.len());
    }
}
