//! Router-level traceroute simulation.
//!
//! Substitutes for RIPE Atlas: paths follow the valley-free forwarding
//! tree toward the destination's origin AS; each AS expands into 1–3
//! router (IP) hops; blackholing providers discard at their ingress; some
//! ASes block ICMP (the paper explicitly controls for this, §10).

use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bh_bgp_types::asn::Asn;
use bh_routing::ForwardingTree;
use bh_topology::Topology;

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The AS the router belongs to.
    pub asn: Asn,
    /// Router address (synthetic, stable per (AS, index)).
    pub address: Ipv4Addr,
    /// Whether the router answered (ICMP not blocked).
    pub responded: bool,
}

/// A completed measurement.
#[derive(Debug, Clone)]
pub struct Traceroute {
    /// Source AS.
    pub src: Asn,
    /// Target address.
    pub target: Ipv4Addr,
    /// Hops in order (destination not included; see `reached`).
    pub hops: Vec<Hop>,
    /// Whether the destination itself replied.
    pub reached: bool,
}

impl Traceroute {
    /// The paper's "path length": hops to the last *responding*
    /// interface (the destination counts when reached).
    pub fn ip_path_length(&self) -> usize {
        let last_responding =
            self.hops.iter().rposition(|h| h.responded).map(|i| i + 1).unwrap_or(0);
        if self.reached {
            self.hops.len() + 1
        } else {
            last_responding
        }
    }

    /// AS-level path length to the last responding interface.
    pub fn as_path_length(&self) -> usize {
        let mut ases = BTreeSet::new();
        let limit = if self.reached {
            self.hops.len()
        } else {
            self.hops.iter().rposition(|h| h.responded).map(|i| i + 1).unwrap_or(0)
        };
        for hop in &self.hops[..limit] {
            ases.insert(hop.asn);
        }
        ases.len()
    }
}

/// The traceroute engine. Holds per-destination forwarding trees
/// (cached) and deterministic per-AS router parameters.
pub struct TracerouteSim<'a> {
    topology: &'a Topology,
    trees: HashMap<Asn, ForwardingTree>,
    hop_counts: HashMap<Asn, u8>,
    icmp_silent: BTreeSet<Asn>,
}

impl<'a> TracerouteSim<'a> {
    /// Build with a seed controlling router-count and ICMP behavior.
    pub fn new(topology: &'a Topology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hop_counts = HashMap::new();
        let mut icmp_silent = BTreeSet::new();
        for info in topology.ases() {
            hop_counts.insert(info.asn, rng.gen_range(1..=3));
            if rng.gen_bool(0.08) {
                icmp_silent.insert(info.asn);
            }
        }
        TracerouteSim { topology, trees: HashMap::new(), hop_counts, icmp_silent }
    }

    /// Synthetic but stable router address for (AS, hop index).
    fn router_addr(asn: Asn, index: u8) -> Ipv4Addr {
        // 203.0.113/24 is reserved documentation space; router identities
        // only need stability and uniqueness-per-AS for the analysis.
        let v = asn.value();
        Ipv4Addr::new(
            (10 + (v >> 16) % 90) as u8,
            (v >> 8) as u8,
            v as u8,
            index.wrapping_mul(17).wrapping_add(1),
        )
    }

    fn tree_for(&mut self, origin: Asn) -> &ForwardingTree {
        let topology = self.topology;
        self.trees.entry(origin).or_insert_with(|| ForwardingTree::toward(topology, origin))
    }

    /// Trace from `src` toward `target` (owned by `dst_origin`).
    /// `dropping` is the set of ASes currently discarding traffic for the
    /// target's prefix; `dst_responds` models the destination host being
    /// up (the control-plane experiment requires a responding target).
    pub fn trace(
        &mut self,
        src: Asn,
        dst_origin: Asn,
        target: Ipv4Addr,
        dropping: &BTreeSet<Asn>,
        dst_responds: bool,
    ) -> Traceroute {
        let icmp_silent = self.icmp_silent.clone();
        let hop_counts = self.hop_counts.clone();
        let tree = self.tree_for(dst_origin);
        let mut hops = Vec::new();
        let mut reached = false;
        if let Some(as_path) = tree.path_from(src) {
            'walk: for (i, asn) in as_path.iter().enumerate() {
                let n_routers = hop_counts.get(asn).copied().unwrap_or(2);
                let responds = !icmp_silent.contains(asn);
                // A null route discards traffic *anywhere inside* the
                // dropping AS — at its ingress for transit traffic, and
                // for its own traffic too (honoring IXP members cannot
                // reach the victim either). The only exception is local
                // delivery: a single-AS path never consults the route.
                let drops_here = dropping.contains(asn) && as_path.len() > 1;
                for r in 0..n_routers {
                    hops.push(Hop {
                        asn: *asn,
                        address: Self::router_addr(*asn, r),
                        responded: responds,
                    });
                    if drops_here {
                        break 'walk;
                    }
                }
                let _ = i;
            }
            let dst_blackholed = as_path.len() > 1 && as_path.iter().any(|a| dropping.contains(a));
            reached = dst_responds && !dst_blackholed;
        }
        Traceroute { src, target, hops, reached }
    }
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};

    use super::*;

    fn setup() -> (Topology, Asn, Asn, Ipv4Addr) {
        let t = TopologyBuilder::new(TopologyConfig::tiny(91)).build();
        let dst_info =
            t.ases().find(|i| !i.prefixes.is_empty() && i.tier == bh_topology::Tier::Stub).unwrap();
        let dst = dst_info.asn;
        let target = dst_info.prefixes[0].nth_addr(9).unwrap();
        let src = t
            .ases()
            .find(|i| {
                i.asn != dst
                    && i.tier == bh_topology::Tier::Stub
                    && i.network_type != bh_topology::NetworkType::Ixp
            })
            .unwrap()
            .asn;
        (t, src, dst, target)
    }

    #[test]
    fn unblackholed_trace_reaches_destination() {
        let (t, src, dst, target) = setup();
        let mut sim = TracerouteSim::new(&t, 5);
        let trace = sim.trace(src, dst, target, &BTreeSet::new(), true);
        assert!(trace.reached, "destination must be reachable");
        assert!(!trace.hops.is_empty());
        assert_eq!(trace.hops.first().unwrap().asn, src);
        assert_eq!(trace.hops.last().unwrap().asn, dst);
        assert!(trace.ip_path_length() >= trace.as_path_length());
    }

    #[test]
    fn blackholed_trace_terminates_early() {
        let (t, src, dst, target) = setup();
        let mut sim = TracerouteSim::new(&t, 5);
        let clean = sim.trace(src, dst, target, &BTreeSet::new(), true);
        // Drop at the AS right before the destination on the clean path.
        let drop_as = clean.hops[clean.hops.len() - 1].asn;
        let penult =
            clean.hops.iter().rev().find(|h| h.asn != drop_as).map(|h| h.asn).unwrap_or(drop_as);
        let dropping = BTreeSet::from([penult]);
        let during = sim.trace(src, dst, target, &dropping, true);
        assert!(!during.reached, "blackholed target must be unreachable");
        assert!(
            during.ip_path_length() < clean.ip_path_length(),
            "during {} !< after {}",
            during.ip_path_length(),
            clean.ip_path_length()
        );
        assert!(during.as_path_length() <= clean.as_path_length());
    }

    #[test]
    fn dropping_at_destination_as_still_blocks_host() {
        let (t, src, dst, target) = setup();
        let mut sim = TracerouteSim::new(&t, 5);
        let dropping = BTreeSet::from([dst]);
        let during = sim.trace(src, dst, target, &dropping, true);
        assert!(!during.reached);
    }

    #[test]
    fn source_as_dropping_does_not_block_itself() {
        // The dropping check skips index 0: a user blackholing its own
        // prefix elsewhere still reaches it from inside.
        let (t, _, dst, target) = setup();
        let mut sim = TracerouteSim::new(&t, 5);
        let dropping = BTreeSet::from([dst]);
        let from_inside = sim.trace(dst, dst, target, &dropping, true);
        assert!(from_inside.reached);
    }

    #[test]
    fn icmp_silent_ases_shorten_responding_length_only() {
        let (t, src, dst, target) = setup();
        let mut sim = TracerouteSim::new(&t, 5);
        let trace = sim.trace(src, dst, target, &BTreeSet::new(), false);
        // Destination does not respond: length is to last responding hop.
        assert!(!trace.reached);
        assert!(trace.ip_path_length() <= trace.hops.len());
    }

    #[test]
    fn traces_are_deterministic() {
        let (t, src, dst, target) = setup();
        let mut a = TracerouteSim::new(&t, 7);
        let mut b = TracerouteSim::new(&t, 7);
        let ta = a.trace(src, dst, target, &BTreeSet::new(), true);
        let tb = b.trace(src, dst, target, &BTreeSet::new(), true);
        assert_eq!(ta.hops, tb.hops);
    }
}
