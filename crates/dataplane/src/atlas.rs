//! RIPE-Atlas-style probe selection (§10).
//!
//! "For each blackholing event we request ten probes for each one of the
//! following four groups: probes in the downstream cone of the
//! blackholing user, probes in the upstream cone, probes accessible
//! through peering links and probes inside the blackholing user AS …
//! We then select 4 probes (uniformly at random) from each group. If a
//! group doesn't have enough probes we select the remaining probes
//! randomly."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use bh_bgp_types::asn::Asn;
use bh_topology::{NetworkType, Topology};

/// The four probe groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeGroup {
    /// Inside the blackholing user's own AS.
    InsideUser,
    /// In the user's customer (downstream) cone.
    DownstreamCone,
    /// In the user's provider (upstream) cone.
    UpstreamCone,
    /// Reachable over peering links of the user.
    Peering,
}

/// A selected probe: a vantage AS with its group label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Vantage AS.
    pub asn: Asn,
    /// Which group it came from.
    pub group: ProbeGroup,
}

/// Select up to `per_group` probes per group (the paper uses 4), filling
/// shortfalls from the general population.
pub fn select_probes(
    topology: &Topology,
    user: Asn,
    per_group: usize,
    rng: &mut StdRng,
) -> Vec<Probe> {
    let mut probes = Vec::new();
    let mut used: Vec<Asn> = vec![user];

    let pick = |pool: Vec<Asn>,
                group: ProbeGroup,
                probes: &mut Vec<Probe>,
                used: &mut Vec<Asn>,
                rng: &mut StdRng| {
        let filtered: Vec<Asn> = pool.into_iter().filter(|a| !used.contains(a)).collect();
        for asn in filtered.choose_multiple(rng, per_group) {
            probes.push(Probe { asn: *asn, group });
            used.push(*asn);
        }
    };

    // Inside the user AS: the user itself hosts probes (one vantage).
    probes.push(Probe { asn: user, group: ProbeGroup::InsideUser });

    let downstream: Vec<Asn> =
        topology.customer_cone(user).into_iter().filter(|a| *a != user).collect();
    pick(downstream, ProbeGroup::DownstreamCone, &mut probes, &mut used, rng);

    let upstream: Vec<Asn> =
        topology.provider_cone(user).into_iter().filter(|a| *a != user).collect();
    pick(upstream, ProbeGroup::UpstreamCone, &mut probes, &mut used, rng);

    let peering: Vec<Asn> = topology.peers_of(user);
    pick(peering, ProbeGroup::Peering, &mut probes, &mut used, rng);

    // Shortfall: fill from the general population, as the paper does.
    let want = per_group * 4;
    if probes.len() < want {
        let pool: Vec<Asn> = topology
            .ases()
            .filter(|i| i.network_type != NetworkType::Ixp)
            .map(|i| i.asn)
            .filter(|a| !used.contains(a))
            .collect();
        let missing = want - probes.len();
        for asn in pool.choose_multiple(rng, missing) {
            probes.push(Probe { asn: *asn, group: ProbeGroup::Peering });
            used.push(*asn);
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use bh_topology::{TopologyBuilder, TopologyConfig};
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn selection_covers_groups_and_is_deterministic() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(17)).build();
        let user = t
            .ases()
            .find(|i| !t.providers_of(i.asn).is_empty() && !i.prefixes.is_empty())
            .unwrap()
            .asn;
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let a = select_probes(&t, user, 4, &mut rng_a);
        let b = select_probes(&t, user, 4, &mut rng_b);
        assert_eq!(a, b);
        assert!(a.len() >= 4, "shortfall filling must produce enough probes");
        assert!(a.iter().any(|p| p.group == ProbeGroup::InsideUser));
        assert!(a.iter().any(|p| p.group == ProbeGroup::UpstreamCone));
        // No duplicate vantage points.
        let mut asns: Vec<Asn> = a.iter().map(|p| p.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), a.len());
    }

    #[test]
    fn upstream_probes_are_in_the_provider_cone() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(17)).build();
        let user = t.ases().find(|i| !t.providers_of(i.asn).is_empty()).unwrap().asn;
        let cone = t.provider_cone(user);
        let mut rng = StdRng::seed_from_u64(9);
        let probes = select_probes(&t, user, 4, &mut rng);
        for p in probes.iter().filter(|p| p.group == ProbeGroup::UpstreamCone) {
            assert!(cone.contains(&p.asn));
        }
    }

    #[test]
    fn stub_user_without_customers_still_gets_probes() {
        let t = TopologyBuilder::new(TopologyConfig::tiny(17)).build();
        let stub = t
            .ases()
            .find(|i| t.customers_of(i.asn).is_empty() && !t.providers_of(i.asn).is_empty())
            .unwrap()
            .asn;
        let mut rng = StdRng::seed_from_u64(1);
        let probes = select_probes(&t, stub, 4, &mut rng);
        assert!(probes.len() >= 8);
        assert!(probes.iter().all(|p| p.asn != Asn::new(0)));
    }
}
