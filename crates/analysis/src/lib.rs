//! # bh-analysis — statistics and reporting
//!
//! Dependency-light analysis primitives shared by the benches, examples
//! and integration tests:
//!
//! * [`stats`] — ECDFs (Figs. 5, 8, 9), linear and logarithmic histograms
//!   (Figs. 7, 8(b), 9(a/b)), quantiles.
//! * [`render`] — aligned ASCII tables matching the paper's table shapes
//!   and TSV series emitters for every figure.
//! * [`experiments`] — the registry mapping every table/figure to its
//!   bench target and the paper's headline claims (the shape checks that
//!   EXPERIMENTS.md records).

pub mod experiments;
pub mod render;
pub mod stats;

pub use experiments::{info, registry, ExperimentId, ExperimentInfo};
pub use render::{count, pct, render_series, Series, Table};
pub use stats::{mean, Ecdf, Histogram};
