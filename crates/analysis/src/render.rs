//! Rendering: ASCII tables (paper-table shape) and TSV figure series.

use std::fmt::Write as _;

/// A simple aligned ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. The cell count must match the header count:
    /// debug builds assert it (a mismatched row is always a caller
    /// bug), and release builds pad or truncate to the header arity so
    /// [`Table::render`] never indexes out of bounds.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i];
                if i + 1 == cols {
                    let _ = write!(out, "{cell:<pad$}");
                } else {
                    let _ = write!(out, "{cell:<pad$}  ");
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// A named data series for figure output.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// Render one or more series as TSV: `x<TAB>series1<TAB>series2…` on a
/// shared x column per series block (gnuplot-friendly).
pub fn render_series(title: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    for s in series {
        let _ = writeln!(out, "# series: {}", s.name);
        for (x, y) in &s.points {
            let _ = writeln!(out, "{x}\t{y}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Thousands separator for counts.
pub fn count(n: usize) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["Source", "#Prefixes"]);
        t.row(vec!["RIS".into(), "712,176".into()]);
        t.row(vec!["CDN".into(), "1,840,321".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("Source"));
        let lines: Vec<&str> = rendered.lines().collect();
        // header + rule + 2 rows + title.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_rows_in_debug() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn table_pads_bad_rows_in_release() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        // Short rows pad, long rows truncate; render stays well-formed.
        let rendered = t.render();
        assert!(rendered.contains("only-one"));
        assert!(!rendered.contains('3'));
    }

    #[test]
    fn series_tsv() {
        let s = Series::new("cdf", vec![(1.0, 0.5), (2.0, 1.0)]);
        let out = render_series("Fig 8a", &[s]);
        assert!(out.starts_with("# Fig 8a"));
        assert!(out.contains("# series: cdf"));
        assert!(out.contains("1\t0.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.3305), "33.1%");
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(88_209), "88,209");
        assert_eq!(count(1_840_321), "1,840,321");
    }
}
