//! Statistics primitives: ECDFs, histograms, percentiles.
//!
//! Both [`Ecdf`] and [`Histogram`] are *mergeable incremental* forms:
//! they grow one sample at a time ([`Ecdf::push`] /
//! [`Histogram::record`]) and two instances fed disjoint sample sets
//! merge ([`Ecdf::merge`] / [`Histogram::merge`]) into exactly what one
//! instance fed the union would hold — the same contract as
//! `bh_core`'s `EventAccumulator`s, so per-shard statistics fold
//! together losslessly.

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs left"));
        Ecdf { sorted: samples }
    }

    /// An empty ECDF ready for incremental [`Ecdf::push`].
    pub fn empty() -> Self {
        Ecdf { sorted: Vec::new() }
    }

    /// Add one sample, keeping the sorted invariant (NaNs are dropped).
    ///
    /// Each push is a sorted insert — O(n) element moves — so this is
    /// for trickles of samples between reads. Bulk loads should use
    /// [`Ecdf::new`] (sort once) and per-shard folds should build one
    /// `Ecdf` per shard and combine with the linear-time
    /// [`Ecdf::merge`].
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        self.sorted.insert(idx, x);
    }

    /// Fold another ECDF in: the result equals an ECDF built from the
    /// concatenated sample sets (linear-time sorted merge).
    pub fn merge(&mut self, other: Ecdf) {
        let mine = std::mem::take(&mut self.sorted);
        let mut a = mine.into_iter().peekable();
        let mut b = other.sorted.into_iter().peekable();
        let mut out = Vec::with_capacity(a.len() + b.len());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if *x <= *y {
                        out.push(a.next().expect("peeked"));
                    } else {
                        out.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.extend(a.by_ref()),
                (None, Some(_)) => out.extend(b.by_ref()),
                (None, None) => break,
            }
        }
        self.sorted = out;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the ECDF empty?
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), by lower interpolation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The (x, F(x)) points of the step function, deduplicated by x.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some((lx, ly)) if *lx == x => *ly = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A histogram over fixed bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Linear bins: `[lo, hi)` split into `n` equal bins.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo, "invalid histogram spec");
        let width = (hi - lo) / n as f64;
        let edges = (0..=n).map(|i| lo + width * i as f64).collect();
        Histogram { edges, counts: vec![0; n], underflow: 0, overflow: 0 }
    }

    /// Logarithmic bins from `lo` to `hi` (both > 0), `n` bins.
    pub fn logarithmic(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo && lo > 0.0, "invalid log histogram spec");
        let ratio = (hi / lo).powf(1.0 / n as f64);
        let mut edges = Vec::with_capacity(n + 1);
        let mut edge = lo;
        for _ in 0..=n {
            edges.push(edge);
            edge *= ratio;
        }
        Histogram { edges, counts: vec![0; n], underflow: 0, overflow: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.edges[0] {
            self.underflow += 1;
            return;
        }
        if x >= *self.edges.last().expect("edges non-empty") {
            self.overflow += 1;
            return;
        }
        let idx = (self.edges.partition_point(|e| *e <= x) - 1).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Record many samples.
    pub fn record_all(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Fold another histogram over the *same bin edges* in: bin counts
    /// and under/overflow add, so the result equals one histogram fed
    /// both sample sets. Panics when the edges differ.
    pub fn merge(&mut self, other: Histogram) {
        assert_eq!(self.edges, other.edges, "histogram merge requires identical bin edges");
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// `(bin_low, bin_high, count)` triples.
    pub fn bins(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.edges[i], self.edges[i + 1], c))
            .collect()
    }

    /// Samples below the first bin.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.0), 0.75);
        assert_eq!(e.fraction_le(10.0), 1.0);
        assert_eq!(e.median(), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(3.0));
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0, 4.0, 4.0, 2.0]);
        let points = e.points();
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_handles_empty_and_nan() {
        let e = Ecdf::new(vec![f64::NAN, f64::NAN]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.median(), None);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        let p90 = e.quantile(0.9).unwrap();
        assert!((89.0..=91.0).contains(&p90));
    }

    #[test]
    fn linear_histogram() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0]);
        let bins = h.bins();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0].2, 2); // 0.0, 1.9
        assert_eq!(bins[1].2, 1); // 2.0
        assert_eq!(bins[4].2, 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn log_histogram_regimes() {
        // Fig. 8(b)-style: minutes / days / months regimes in hours.
        let mut h = Histogram::logarithmic(1.0 / 60.0, 24.0 * 90.0, 12);
        h.record_all([0.5 / 60.0, 1.0, 30.0 * 24.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 3);
        let nonzero: Vec<_> = h.bins().into_iter().filter(|(_, _, c)| *c > 0).collect();
        assert_eq!(nonzero.len(), 2);
        // Edges grow geometrically.
        let bins = h.bins();
        let r0 = bins[0].1 / bins[0].0;
        let r5 = bins[5].1 / bins[5].0;
        assert!((r0 - r5).abs() < 1e-9);
    }

    #[test]
    fn ecdf_push_matches_batch_construction() {
        let samples = [5.0, 1.0, f64::NAN, 9.0, 4.0, 4.0, 2.0];
        let mut incremental = Ecdf::empty();
        for x in samples {
            incremental.push(x);
        }
        assert_eq!(incremental, Ecdf::new(samples.to_vec()));
    }

    #[test]
    fn ecdf_merge_equals_concatenated_batch() {
        let left = vec![5.0, 1.0, 9.0];
        let right = vec![4.0, 4.0, 2.0, 7.5];
        let mut merged = Ecdf::new(left.clone());
        merged.merge(Ecdf::new(right.clone()));
        let mut all = left;
        all.extend(right);
        assert_eq!(merged, Ecdf::new(all));
        // Merging an empty ECDF is the identity, both ways.
        let mut e = merged.clone();
        e.merge(Ecdf::empty());
        assert_eq!(e, merged);
        let mut empty = Ecdf::empty();
        empty.merge(merged.clone());
        assert_eq!(empty, merged);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        a.record_all([0.0, 1.9, -1.0]);
        let mut b = Histogram::linear(0.0, 10.0, 5);
        b.record_all([2.0, 9.99, 10.0, 55.0]);
        a.merge(b);
        let mut combined = Histogram::linear(0.0, 10.0, 5);
        combined.record_all([0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0]);
        assert_eq!(a, combined);
        assert_eq!(a.total(), 7);
    }

    #[test]
    #[should_panic(expected = "identical bin edges")]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        a.merge(Histogram::linear(0.0, 10.0, 4));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
