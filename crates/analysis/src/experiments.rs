//! The experiment registry: every table and figure of the paper's
//! evaluation, with the paper-reported expectations used for shape
//! checks in EXPERIMENTS.md and the benches.

use serde::Serialize;

/// Identifier of a reproduced artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum ExperimentId {
    /// Table 1: BGP dataset overview.
    Table1,
    /// Table 2: documented blackhole communities by network type.
    Table2,
    /// Table 3: blackhole visibility per dataset.
    Table3,
    /// Table 4: blackhole visibility by provider type.
    Table4,
    /// Fig. 2: community tag × prefix-length fractions.
    Fig2,
    /// Fig. 4(a,b,c): longitudinal adoption.
    Fig4,
    /// Fig. 5(a,b): prefix-count CDFs.
    Fig5,
    /// Fig. 6(a,b): per-country maps.
    Fig6,
    /// Fig. 7(a): services on blackholed IPs.
    Fig7a,
    /// Fig. 7(b): providers per event.
    Fig7b,
    /// Fig. 7(c): collector↔provider AS distance.
    Fig7c,
    /// Fig. 8(a,b): event durations.
    Fig8,
    /// Fig. 9(a): IP-level path deltas.
    Fig9a,
    /// Fig. 9(b): AS-level path deltas.
    Fig9b,
    /// Fig. 9(c): IXP traffic to blackholed prefixes.
    Fig9c,
    /// §8: malicious activity of blackholed IPs.
    Reputation,
}

/// Registry metadata for one experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentInfo {
    /// Identifier.
    pub id: ExperimentId,
    /// Paper artifact name.
    pub artifact: &'static str,
    /// The headline claims the reproduction must match in *shape*.
    pub paper_claims: &'static [&'static str],
    /// The bench target that regenerates it.
    pub bench: &'static str,
    /// The mergeable one-pass form that computes the artifact while the
    /// event stream is still running (a `bh_core` `EventAccumulator`, or
    /// the in-session census for Fig. 2); `None` for artifacts derived
    /// from non-event data (datasets, the dictionary, the data plane).
    pub one_pass: Option<&'static str>,
}

/// All experiments in paper order.
pub fn registry() -> Vec<ExperimentInfo> {
    vec![
        ExperimentInfo {
            id: ExperimentId::Table1,
            artifact: "Table 1 — BGP dataset overview (March 2017)",
            paper_claims: &[
                "CDN sees multiple times more unique prefixes than public collectors",
                "PCH has the most IP peers; RIS/RV are core-biased",
            ],
            bench: "table1_datasets",
            one_pass: None,
        },
        ExperimentInfo {
            id: ExperimentId::Table2,
            artifact: "Table 2 — documented blackhole communities",
            paper_claims: &[
                "307 networks total, Transit/Access dominates (198)",
                "49 IXPs share ~2 communities (RFC 7999 majority)",
                "~51% of community values use the ASN:666 convention",
            ],
            bench: "table2_dictionary",
            one_pass: None,
        },
        ExperimentInfo {
            id: ExperimentId::Table3,
            artifact: "Table 3 — blackhole visibility per dataset (Aug 2016 – Mar 2017)",
            paper_claims: &[
                "CDN observes the most blackholing providers (direct internal feeds)",
                "CDN+PCH prefix coverage beats RIS/RV",
                "PCH has the highest direct-feed fraction",
            ],
            bench: "table3_visibility",
            one_pass: Some("VisibilityAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Table4,
            artifact: "Table 4 — visibility by provider type",
            paper_claims: &[
                "Transit/Access providers carry ~90% of blackholed prefixes",
                "IXPs are second: ~10% of providers, ~60% of users",
                "IXPs have a 100% direct-feed fraction",
            ],
            bench: "table4_types",
            one_pass: Some("TypeAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig2,
            artifact: "Fig. 2 — community tag vs prefix length",
            paper_claims: &[
                "blackhole communities ride almost exclusively on /32s",
                "other communities ride on /24 or less-specific prefixes",
                "inferred candidates: exclusively >/24 + co-occurrence",
            ],
            bench: "fig2_prefix_length",
            one_pass: Some("CommunityPrefixCensus (maintained in-session)"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig4,
            artifact: "Fig. 4 — longitudinal adoption (Dec 2014 – Mar 2017)",
            paper_claims: &[
                "providers/day roughly double",
                "users/day grow ~4x",
                "prefixes/day grow ~6x with attack-correlated spikes",
            ],
            bench: "fig4_longitudinal",
            one_pass: Some("DailySeriesAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig5,
            artifact: "Fig. 5 — prefix-count CDFs per provider and user type",
            paper_claims: &[
                "IXP provider CDF is more extreme at both ends than transit",
                "content users originate disproportionately many prefixes",
            ],
            bench: "fig5_cdfs",
            one_pass: Some("ProviderPrefixAccumulator + UserPrefixAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig6,
            artifact: "Fig. 6 — providers/users per country",
            paper_claims: &["RU, US, DE lead both maps", "BR and UA enter the users' top-5"],
            bench: "fig6_geography",
            one_pass: Some("CountryAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig7a,
            artifact: "Fig. 7(a) — services on blackholed IPs",
            paper_claims: &[
                "HTTP dominates (~53% of prefixes)",
                "~60% of prefixes expose at least one service",
                "tarpits accept everything (~4%)",
            ],
            bench: "fig7a_services",
            one_pass: Some("PrefixSetAccumulator (scan-input census)"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig7b,
            artifact: "Fig. 7(b) — providers per blackholing event",
            paper_claims: &[
                "~28% of events involve multiple providers",
                "~2% involve more than 10",
            ],
            bench: "fig7b_providers_per_event",
            one_pass: Some("ProvidersPerEventAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig7c,
            artifact: "Fig. 7(c) — AS distance collector↔provider",
            paper_claims: &[
                "no-path (bundling) is the largest bucket (~50%)",
                "0-distance ≈ 20% (collector at the blackholing IXP)",
                "~30% propagate 1–6 hops",
            ],
            bench: "fig7c_distance",
            one_pass: Some("DistanceAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig8,
            artifact: "Fig. 8 — blackholing durations",
            paper_claims: &[
                ">70% of ungrouped events last ≤1 minute",
                "≤4% of 5-minute-grouped periods are that short",
                "three regimes: minutes, long-lived, very long-lived",
            ],
            bench: "fig8_durations",
            one_pass: Some("DurationAccumulator + PeriodAccumulator"),
        },
        ExperimentInfo {
            id: ExperimentId::Fig9a,
            artifact: "Fig. 9(a) — IP-level path-length impact",
            paper_claims: &[
                ">80% of paths terminate earlier during blackholing",
                "average shortening ≈ 5.9 IP hops",
            ],
            bench: "fig9a_ip_paths",
            one_pass: None,
        },
        ExperimentInfo {
            id: ExperimentId::Fig9b,
            artifact: "Fig. 9(b) — AS-level path-length impact",
            paper_claims: &[
                "average shortening 2–4 AS hops",
                "~16% dropped at destination AS or direct upstream",
            ],
            bench: "fig9b_as_paths",
            one_pass: None,
        },
        ExperimentInfo {
            id: ExperimentId::Fig9c,
            artifact: "Fig. 9(c) — IXP traffic to blackholed prefixes",
            paper_claims: &[
                ">50% of traffic to announced /32s dropped",
                "~80% of leaked traffic from <10 members",
                "~1/3 of traffic-sending ASes drop",
            ],
            bench: "fig9c_ixp_traffic",
            one_pass: None,
        },
        ExperimentInfo {
            id: ExperimentId::Reputation,
            artifact: "§8 — malicious activity of blackholed IPs",
            paper_claims: &[
                "400–900 daily matches, >90% probers",
                "500–800 daily login-attempt IPs",
                "union ≈ 2% of blackholed prefixes",
            ],
            bench: "sec8_reputation",
            one_pass: Some("PrefixSetAccumulator (reputation-input census)"),
        },
    ]
}

/// Look up one experiment.
pub fn info(id: ExperimentId) -> ExperimentInfo {
    registry().into_iter().find(|e| e.id == id).expect("registry covers all ids")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = registry();
        assert_eq!(all.len(), 16);
        let mut ids: Vec<ExperimentId> = all.iter().map(|e| e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
        let mut benches: Vec<&str> = all.iter().map(|e| e.bench).collect();
        benches.sort();
        benches.dedup();
        assert_eq!(benches.len(), 16, "bench targets must be unique");
    }

    #[test]
    fn lookup_works() {
        let t3 = info(ExperimentId::Table3);
        assert!(t3.artifact.contains("Table 3"));
        assert!(!t3.paper_claims.is_empty());
    }

    #[test]
    fn every_experiment_has_claims() {
        for e in registry() {
            assert!(!e.paper_claims.is_empty(), "{:?} has no claims", e.id);
            assert!(!e.bench.is_empty());
        }
    }

    #[test]
    fn event_derived_artifacts_have_one_pass_forms() {
        // Every artifact computed from inferred events streams through a
        // mergeable accumulator; the non-event artifacts are exactly the
        // dataset overview, the dictionary, and the data-plane figures.
        let batch_only: Vec<ExperimentId> =
            registry().into_iter().filter(|e| e.one_pass.is_none()).map(|e| e.id).collect();
        assert_eq!(
            batch_only,
            vec![
                ExperimentId::Table1,
                ExperimentId::Table2,
                ExperimentId::Fig9a,
                ExperimentId::Fig9b,
                ExperimentId::Fig9c,
            ]
        );
    }
}
