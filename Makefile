# Offline mirror of .github/workflows/ci.yml — `make check` runs the
# same gates CI does.

CARGO ?= cargo

.PHONY: check fmt fmt-check build test test-release clippy doc quickstart bench bench-check

check: fmt-check build test clippy bench-check doc

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

build:
	$(CARGO) build --release

# Runs every unit test plus the integration suite under tests/
# (fleet ingestion golden equivalence, MRT round-trip proptests, …).
test:
	$(CARGO) test -q

# The heap-merge and proptest suites again, optimized — what the CI
# release-test job runs (debug_assert-free, so it also exercises the
# release-mode code paths of the merge).
test-release:
	$(CARGO) test -q --release

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

quickstart:
	$(CARGO) run --release -p bh-examples --example quickstart

bench:
	$(CARGO) bench -p bh-bench

# Compile (but do not run) the 18 harness=false bench targets, so they
# cannot silently rot: clippy lints them, this proves they still link.
bench-check:
	$(CARGO) bench -p bh-bench --no-run
