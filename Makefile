# Offline mirror of .github/workflows/ci.yml — `make check` runs the
# same gates CI does.

CARGO ?= cargo

# PR number stamped into the bench trajectory file (BENCH_$(BENCH_PR).json).
BENCH_PR ?= 10
BENCH_JSONL ?= $(CURDIR)/target/criterion-run.jsonl
# The perf-critical suites the trajectory tracks (the full figure
# suite is minutes-scale; these cover the ingest hot path and the
# live-service overhead).
BENCH_SUITES = --bench pipeline_throughput --bench fleet_ingest --bench live_latency --bench policy_overhead --bench propagation_massive --bench classifier_mining

.PHONY: check fmt fmt-check build test test-release clippy doc quickstart bench bench-check \
	bench-json bench-baseline bench-compare

check: fmt-check build test clippy bench-check doc quickstart bench-compare

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

build:
	$(CARGO) build --release

# Runs every unit test plus the integration suite under tests/
# (fleet ingestion golden equivalence, MRT round-trip proptests, …).
test:
	$(CARGO) test -q

# The heap-merge and proptest suites again, optimized — what the CI
# release-test job runs (debug_assert-free, so it also exercises the
# release-mode code paths of the merge).
test-release:
	$(CARGO) test -q --release

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

quickstart:
	$(CARGO) run --release -p bh-examples --example quickstart

bench:
	$(CARGO) bench -p bh-bench

# Compile (but do not run) the 22 harness=false bench targets, so they
# cannot silently rot: clippy lints them, this proves they still link.
bench-check:
	$(CARGO) bench -p bh-bench --no-run

# Record the perf-critical suites into the trajectory file's "current"
# section (BENCH_$(BENCH_PR).json at the repo root). Run bench-baseline
# BEFORE a perf change and bench-json after it, so the file carries the
# before/after pair.
bench-json:
	rm -f $(BENCH_JSONL)
	CRITERION_JSON=$(BENCH_JSONL) $(CARGO) bench -p bh-bench $(BENCH_SUITES)
	$(CARGO) run --release -p bh-bench --bin bench_compare -- \
		collect $(BENCH_JSONL) BENCH_$(BENCH_PR).json --pr $(BENCH_PR) --section current

# Record the pre-change baseline section of the trajectory file.
bench-baseline:
	rm -f $(BENCH_JSONL)
	CRITERION_JSON=$(BENCH_JSONL) $(CARGO) bench -p bh-bench $(BENCH_SUITES)
	$(CARGO) run --release -p bh-bench --bin bench_compare -- \
		collect $(BENCH_JSONL) BENCH_$(BENCH_PR).json --pr $(BENCH_PR) --section baseline

# Gate gross regressions across the two newest committed trajectory
# points; a no-op while fewer than two BENCH_*.json files exist.
bench-compare:
	$(CARGO) run --release -p bh-bench --bin bench_compare -- check .
