# Offline mirror of .github/workflows/ci.yml — `make check` runs the
# same gates CI does.

CARGO ?= cargo

.PHONY: check fmt fmt-check build test clippy doc quickstart bench bench-check

check: fmt-check build test clippy bench-check doc

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

quickstart:
	$(CARGO) run --release -p bh-examples --example quickstart

bench:
	$(CARGO) bench -p bh-bench

# Compile (but do not run) the 17 harness=false bench targets, so they
# cannot silently rot: clippy lints them, this proves they still link.
bench-check:
	$(CARGO) bench -p bh-bench --no-run
